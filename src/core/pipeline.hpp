// The aptq public API: one entry point that calibrates, quantizes and
// packages a model under any of the paper's methods.
//
//   Corpus c4 = ...;                 // calibration corpus (C4 in the paper)
//   Model fp = ...;                  // pretrained model
//   PipelineConfig cfg;
//   cfg.ratio_high = 0.75;           // APTQ-75%: 2/4-bit mixed precision
//   QuantizedModel qm = quantize_model(fp, c4, Method::aptq_mixed, cfg);
//   auto ppl = evaluate_perplexity(qm.model, segments, qm.forward_options);
//
// Methods map one-to-one onto the rows of the paper's Tables 1-3.
#pragma once

#include <string>

#include "data/corpus.hpp"
#include "model/model.hpp"
#include "quant/aptq.hpp"
#include "quant/baselines.hpp"
#include "quant/mixed_precision.hpp"
#include "quant/qmodel.hpp"

namespace aptq {

/// Quantization method selector (one per comparison row).
enum class Method {
  fp,              ///< full-precision passthrough (the FP16 row)
  rtn,             ///< round-to-nearest
  gptq,            ///< GPTQ: second-order, plain XXᵀ Hessians
  owq,             ///< OWQ: GPTQ + FP outlier columns
  smoothquant,     ///< SmoothQuant: migration + W4 RTN + simulated A8
  fpq,             ///< FPQ / LLM-FP4: FP4 (E2M1) grids
  llm_qat,         ///< LLM-QAT: data-free STE fine-tuning
  pbllm,           ///< PB-LLM: partial binarization
  awq,             ///< AWQ: activation-aware scaling + W4 RTN (extension)
  aptq,            ///< APTQ: attention-aware Hessians, uniform bits
  aptq_mixed,      ///< APTQ-R: attention-aware + Hessian-trace 2/4-bit mix
  blockwise_mixed, ///< manual block-wise 2/4-bit mix (Table 3 ablation)
  aptq_knapsack,   ///< extension: knapsack allocator over a {2,3,4,8} menu
                   ///< at the same average-bit target as APTQ-R
};

/// Pipeline configuration. Defaults reproduce the paper's protocol scaled
/// to this build (128 calibration segments, group quantization, sequential
/// block-by-block solving).
struct PipelineConfig {
  // Grid.
  int bits = 4;                 ///< uniform bit width (non-mixed methods)
  std::size_t group_size = 16;  ///< quantization group size
  // Mixed precision.
  double ratio_high = 1.0;      ///< R: fraction of weights at 4 bits
  int high_bits = 4;
  int low_bits = 2;
  SensitivityMetric sensitivity_metric = SensitivityMetric::avg_trace;
  // Calibration.
  std::size_t calib_segments = 128;
  std::size_t calib_seq_len = 48;
  std::uint64_t calib_seed = 0xCA11B5EED;
  std::size_t probes = 2;       ///< attention-probe count per segment
  bool sequential = true;       ///< re-calibrate each block on the partially
                                ///< quantized model (GPTQ protocol)
  // Solver.
  std::size_t solver_block = 16;
  double damp = 0.01;
  bool act_order = false;
  // Baseline-specific.
  double pbllm_salient_fraction = 0.2;
  double owq_fp_column_fraction = 0.02;
  double smoothquant_alpha = 0.5;
  int smoothquant_act_bits = 8;
  QatConfig qat;
  /// Menu for Method::aptq_knapsack (target avg bits = 4R + 2(1−R)).
  std::vector<int> knapsack_menu = {2, 3, 4, 8};
  /// Use the MSE clip search when fitting quantization grids.
  bool mse_clip_search = false;
};

/// Human-readable method label matching the paper's table rows
/// ("APTQ-75%", "PB-LLM-20%", ...).
std::string method_name(Method method, const PipelineConfig& config);

/// Quantize `fp_model` with `method` using calibration data drawn from
/// `calib_corpus`. Returns the evaluable quantized model plus bookkeeping.
QuantizedModel quantize_model(const Model& fp_model,
                              const Corpus& calib_corpus, Method method,
                              const PipelineConfig& config);

/// The same, with an explicit pre-sampled calibration set (used by the
/// calibration-size ablation).
QuantizedModel quantize_model_with_segments(
    const Model& fp_model, std::span<const TokenSeq> segments, Method method,
    const PipelineConfig& config);

}  // namespace aptq
