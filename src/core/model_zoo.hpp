// Model zoo: the two "pretrained" models the experiments quantize
// (llama7b-sim / llama13b-sim, DESIGN.md §1) and the standard corpora,
// trained once and cached on disk so every bench shares identical weights.
#pragma once

#include <memory>
#include <string>

#include "data/corpus.hpp"
#include "model/model.hpp"
#include "train/trainer.hpp"

namespace aptq {

/// A zoo entry: architecture + training recipe under a stable name.
struct ZooSpec {
  std::string name;
  ModelConfig config;
  TrainConfig train;
  std::uint64_t init_seed = 1;
};

/// The scaled-down LLaMA-7B stand-in (d=48, 4 blocks, 4 heads).
ZooSpec llama7b_sim();

/// The scaled-down LLaMA-13B stand-in (d=64, 5 blocks, 4 heads).
ZooSpec llama13b_sim();

/// The serving-scale target model for the speculative-decoding bench
/// (d=128, 4 blocks, 4 heads). Large enough that batched verification
/// amortizes per-step overheads; shares the vocab-64 corpora.
ZooSpec serve_sim();

/// The deliberately tiny draft model for speculative decoding
/// (d=24, 2 blocks, 2 heads). Trained on the same corpora as the
/// targets so greedy agreement is high while a step costs a few
/// percent of a target step.
ZooSpec draft_sim();

/// The shared experiment corpora (held by value; construction generates the
/// token streams deterministically).
struct StandardCorpora {
  Corpus c4;    ///< "C4Sim": calibration + perplexity corpus
  Corpus wiki;  ///< "WikiSim": second perplexity corpus
};

/// Build the standard corpora (vocab 64; ~200k/100k train tokens).
std::unique_ptr<StandardCorpora> make_standard_corpora();

/// Train-once-and-cache model provider.
class ModelZoo {
 public:
  /// `cache_dir` empty: use $APTQ_CACHE_DIR or ".cache/aptq".
  explicit ModelZoo(std::string cache_dir = "");

  /// Return the pretrained model for `spec`, training it on the given
  /// corpora on first use (progress printed to stdout when `verbose`).
  Model get(const ZooSpec& spec, const StandardCorpora& corpora,
            bool verbose = true);

  const std::string& cache_dir() const { return cache_dir_; }

 private:
  std::string checkpoint_path(const ZooSpec& spec) const;

  std::string cache_dir_;
};

}  // namespace aptq
