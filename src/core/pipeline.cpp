#include "core/pipeline.hpp"

#include <cmath>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/gptq.hpp"
#include "tensor/ops.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace aptq {

namespace {

std::string percent_label(double fraction) {
  const double pct = 100.0 * fraction;
  const long rounded = std::lround(pct);
  if (std::fabs(pct - static_cast<double>(rounded)) < 1e-9) {
    return std::to_string(rounded) + "%";
  }
  return fmt_fixed(pct, 1) + "%";
}

}  // namespace

std::string method_name(Method method, const PipelineConfig& config) {
  switch (method) {
    case Method::fp: return "FP32";
    case Method::rtn: return "RTN";
    case Method::gptq: return "GPTQ";
    case Method::owq: return "OWQ";
    case Method::smoothquant: return "SmoothQuant";
    case Method::fpq: return "FPQ";
    case Method::llm_qat: return "LLM-QAT";
    case Method::pbllm:
      return "PB-LLM-" + percent_label(config.pbllm_salient_fraction);
    case Method::awq: return "AWQ";
    case Method::aptq: return "APTQ";
    case Method::aptq_mixed:
      return "APTQ-" + percent_label(config.ratio_high);
    case Method::blockwise_mixed:
      return "Blockwise-" + percent_label(config.ratio_high);
    case Method::aptq_knapsack:
      return "APTQ-KP-" + percent_label(config.ratio_high);
  }
  APTQ_FAIL("unknown Method");
}

namespace {

QuantSpec int_spec(int bits, std::size_t group_size,
                   bool mse_clip_search = false) {
  QuantSpec spec;
  spec.bits = bits;
  spec.group_size = group_size;
  spec.mse_clip_search = mse_clip_search;
  return spec;
}

// Record for a layer left untouched in full precision.
QuantizedLayerInfo fp_layer_info(const LinearRef& ref) {
  QuantizedLayerInfo info;
  info.name = ref.name;
  info.bits = 32.0;
  info.weight_count = ref.weight->size();
  info.packed_bytes = ref.weight->size() * sizeof(float);
  return info;
}

// Methods whose per-layer work runs through the Hessian-driven path.
bool needs_hessians(Method method) {
  switch (method) {
    case Method::gptq:
    case Method::owq:
    case Method::pbllm:
    case Method::aptq:
    case Method::aptq_mixed:
    case Method::blockwise_mixed:
    case Method::aptq_knapsack:
      return true;
    default:
      return false;
  }
}

HessianMode hessian_mode_for(Method method) {
  switch (method) {
    case Method::aptq:
    case Method::aptq_mixed:
    case Method::blockwise_mixed:  // ablation isolates the allocator only
    case Method::aptq_knapsack:
      return HessianMode::aptq;
    default:
      return HessianMode::gptq;
  }
}

// Mean squared element-wise error between the reference and quantized
// weights — the per-layer "quant.mse" telemetry column.
double weight_mse(const Matrix& w_ref, const Matrix& w_quant) {
  const double dist = frobenius_distance(w_ref, w_quant);
  return dist * dist / static_cast<double>(w_ref.size());
}

// Quantize one layer given its Hessian; returns the info record and writes
// the quantized weights back through the ref.
QuantizedLayerInfo quantize_hessian_layer(const LinearRef& ref,
                                          const LayerCalibration& calib,
                                          Method method, int layer_bits,
                                          const PipelineConfig& config) {
  obs::TraceSpan span("layer:" + ref.name, "quant");
  const Matrix wt = ref.weight->transposed();  // out-major view
  QuantizedLayerInfo info;
  info.name = ref.name;
  info.weight_count = wt.size();

  switch (method) {
    case Method::gptq:
    case Method::aptq:
    case Method::aptq_mixed:
    case Method::blockwise_mixed:
    case Method::aptq_knapsack: {
      GptqConfig gc;
      gc.spec = int_spec(layer_bits, config.group_size,
                         config.mse_clip_search);
      gc.block_size = config.solver_block;
      gc.damp = config.damp;
      gc.act_order = config.act_order;
      GptqResult res = gptq_quantize(wt, calib.hessian, gc);
      info = make_layer_info(ref.name, res.weight, gc.spec, res.proxy_loss,
                             res.recon_error);
      *ref.weight = res.weight.transposed();
      break;
    }
    case Method::owq: {
      OwqConfig oc;
      oc.spec = int_spec(layer_bits, config.group_size);
      oc.block_size = config.solver_block;
      oc.damp = config.damp;
      oc.fp_column_fraction = config.owq_fp_column_fraction;
      OwqResult res = owq_quantize(wt, calib.hessian, oc);
      info.bits = res.avg_bits;
      info.packed_bytes = static_cast<std::size_t>(
          std::ceil(res.avg_bits * static_cast<double>(wt.size()) / 8.0));
      info.recon_error =
          reconstruction_error(wt, res.weight, calib.hessian);
      *ref.weight = res.weight.transposed();
      break;
    }
    case Method::pbllm: {
      PbLlmConfig pc;
      pc.salient_fraction = config.pbllm_salient_fraction;
      PbLlmResult res = pbllm_quantize(wt, calib.hessian, pc);
      info.bits = res.avg_bits;
      info.packed_bytes = static_cast<std::size_t>(
          std::ceil(res.avg_bits * static_cast<double>(wt.size()) / 8.0));
      info.recon_error =
          reconstruction_error(wt, res.weight, calib.hessian);
      *ref.weight = res.weight.transposed();
      break;
    }
    default:
      APTQ_FAIL("quantize_hessian_layer: not a Hessian method");
  }
  if (obs::telemetry_enabled()) {
    obs::layer_stat(ref.name, "alloc.bits", layer_bits);
    obs::layer_stat(ref.name, "quant.bits_effective", info.bits);
    obs::layer_stat(ref.name, "quant.mse",
                    weight_mse(wt, ref.weight->transposed()));
    obs::layer_stat(ref.name, "quant.proxy_loss", info.proxy_loss);
    obs::layer_stat(ref.name, "quant.recon_error", info.recon_error);
    obs::layer_stat(ref.name, "quant.packed_bytes",
                    static_cast<double>(info.packed_bytes));
    obs::layer_stat(ref.name, "hessian.damp", config.damp);
  }
  return info;
}

// Fan the independent per-layer quantization jobs of one calibration result
// out across the thread pool. Each job reads its own Hessian and writes its
// own weight matrix, so the jobs commute; the info records are appended in
// calibration order regardless of scheduling.
template <typename BitsFn>
void quantize_layers(const CalibrationResult& calib,
                     const std::map<std::string, const LinearRef*>& by_name,
                     Method method, const PipelineConfig& config,
                     const BitsFn& layer_bits,
                     std::vector<QuantizedLayerInfo>& out) {
  const std::size_t base = out.size();
  out.resize(base + calib.layers.size());
  parallel_for(0, calib.layers.size(), 1,
               [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const LayerCalibration& layer = calib.layers[i];
      const LinearRef* ref = by_name.at(layer.name);
      out[base + i] = quantize_hessian_layer(*ref, layer, method,
                                             layer_bits(layer.name), config);
    }
  });
}

}  // namespace

QuantizedModel quantize_model_with_segments(
    const Model& fp_model, std::span<const TokenSeq> segments, Method method,
    const PipelineConfig& config) {
  obs::PhaseSpan phase("pipeline.quantize_model");
  QuantizedModel qm;
  qm.method = method_name(method, config);
  qm.model = fp_model;

  const auto linears = collect_linears(qm.model);

  if (method == Method::fp) {
    for (const auto& ref : linears) {
      qm.layers.push_back(fp_layer_info(ref));
    }
    return qm;
  }

  if (method == Method::rtn || method == Method::fpq) {
    QuantSpec spec = int_spec(config.bits, config.group_size);
    if (method == Method::fpq) {
      spec.format = QFormat::fp4_e2m1;
      spec.bits = 4;
    }
    for (const auto& ref : linears) {
      Matrix wt = ref.weight->transposed();
      Matrix original;
      if (obs::telemetry_enabled()) {
        original = wt;
      }
      quantize_dequantize_matrix(wt, spec);
      if (obs::telemetry_enabled()) {
        obs::layer_stat(ref.name, "alloc.bits", spec.bits);
        obs::layer_stat(ref.name, "quant.mse", weight_mse(original, wt));
      }
      qm.layers.push_back(make_layer_info(ref.name, wt, spec, 0.0, 0.0));
      *ref.weight = wt.transposed();
    }
    return qm;
  }

  if (method == Method::awq) {
    const ActivationMaxima maxima =
        collect_activation_maxima(fp_model, segments);
    AwqConfig ac;
    ac.spec = int_spec(config.bits, config.group_size,
                       config.mse_clip_search);
    awq_apply(qm.model, maxima, ac);
    for (const auto& ref : linears) {
      obs::layer_stat(ref.name, "alloc.bits", ac.spec.bits);
      qm.layers.push_back(make_layer_info(ref.name, ref.weight->transposed(),
                                          ac.spec, 0.0, 0.0));
    }
    return qm;
  }

  if (method == Method::smoothquant) {
    const ActivationMaxima maxima =
        collect_activation_maxima(fp_model, segments);
    SmoothQuantConfig sc;
    sc.alpha = config.smoothquant_alpha;
    sc.weight_bits = config.bits;
    sc.group_size = config.group_size;
    sc.act_bits = config.smoothquant_act_bits;
    smoothquant_apply(qm.model, maxima, sc);
    const QuantSpec spec = int_spec(config.bits, config.group_size);
    for (const auto& ref : linears) {
      obs::layer_stat(ref.name, "alloc.bits", spec.bits);
      qm.layers.push_back(
          make_layer_info(ref.name, ref.weight->transposed(), spec, 0.0, 0.0));
    }
    qm.forward_options.act_quant_bits = config.smoothquant_act_bits;
    return qm;
  }

  if (method == Method::llm_qat) {
    QatConfig qc = config.qat;
    qc.spec = int_spec(config.bits, config.group_size);
    qm.model = qat_finetune(fp_model, qc);
    const auto trained_linears = collect_linears(qm.model);
    for (const auto& ref : trained_linears) {
      obs::layer_stat(ref.name, "alloc.bits", qc.spec.bits);
      qm.layers.push_back(make_layer_info(ref.name, ref.weight->transposed(),
                                          qc.spec, 0.0, 0.0));
    }
    return qm;
  }

  APTQ_CHECK(needs_hessians(method), "quantize_model: unhandled method");
  CalibConfig calib_cfg;
  calib_cfg.mode = hessian_mode_for(method);
  calib_cfg.probes = config.probes;
  calib_cfg.seed = config.calib_seed ^ 0xABCDu;

  // Mixed-precision methods decide the per-layer bit widths from a
  // sensitivity pre-pass on the full-precision model (Algorithm 1, step 2).
  BitAllocation allocation;
  const bool mixed = method == Method::aptq_mixed ||
                     method == Method::blockwise_mixed ||
                     method == Method::aptq_knapsack;
  if (mixed) {
    obs::PhaseSpan prepass_phase("pipeline.sensitivity_prepass");
    const CalibrationResult full =
        collect_calibration(fp_model, segments, calib_cfg);
    const auto ranking =
        rank_sensitivities(full, fp_model, config.sensitivity_metric);
    switch (method) {
      case Method::aptq_mixed:
        allocation = allocate_by_sensitivity(ranking, config.ratio_high,
                                             config.high_bits,
                                             config.low_bits);
        break;
      case Method::blockwise_mixed:
        allocation = allocate_blockwise(ranking, config.ratio_high,
                                        config.high_bits, config.low_bits);
        break;
      default: {
        const double target =
            static_cast<double>(config.high_bits) * config.ratio_high +
            static_cast<double>(config.low_bits) * (1.0 - config.ratio_high);
        allocation = allocate_knapsack(ranking, fp_model, target,
                                       config.knapsack_menu,
                                       config.group_size);
        break;
      }
    }
  }
  const auto layer_bits = [&](const std::string& name) {
    if (!mixed) {
      return config.bits;
    }
    const auto it = allocation.find(name);
    APTQ_CHECK(it != allocation.end(),
               "quantize_model: layer missing from allocation: " + name);
    return it->second;
  };

  std::map<std::string, const LinearRef*> by_name;
  for (const auto& ref : linears) {
    by_name[ref.name] = &ref;
  }

  if (config.sequential) {
    // GPTQ protocol: quantize block by block, re-deriving each block's
    // Hessians on the partially quantized model. Within a block the layer
    // jobs are independent and run concurrently.
    for (std::size_t b = 0; b < qm.model.config.n_layers; ++b) {
      obs::TraceSpan block_span("block:" + std::to_string(b), "pipeline");
      CalibrationResult calib;
      {
        obs::PhaseSpan calib_phase("pipeline.calibration");
        calib = collect_block_calibration(qm.model, segments, b, calib_cfg);
      }
      obs::PhaseSpan solve_phase("pipeline.solve");
      quantize_layers(calib, by_name, method, config, layer_bits, qm.layers);
    }
  } else {
    CalibrationResult calib;
    {
      obs::PhaseSpan calib_phase("pipeline.calibration");
      calib = collect_calibration(fp_model, segments, calib_cfg);
    }
    obs::PhaseSpan solve_phase("pipeline.solve");
    quantize_layers(calib, by_name, method, config, layer_bits, qm.layers);
  }
  return qm;
}

QuantizedModel quantize_model(const Model& fp_model,
                              const Corpus& calib_corpus, Method method,
                              const PipelineConfig& config) {
  const auto segments = sample_calibration_set(
      calib_corpus, config.calib_segments, config.calib_seq_len,
      config.calib_seed);
  return quantize_model_with_segments(fp_model, segments, method, config);
}

}  // namespace aptq
