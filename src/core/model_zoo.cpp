#include "core/model_zoo.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

namespace aptq {

ZooSpec llama7b_sim() {
  ZooSpec spec;
  spec.name = "llama7b-sim";
  spec.config.vocab_size = 64;
  spec.config.dim = 48;
  spec.config.n_layers = 4;
  spec.config.n_heads = 4;
  spec.config.ffn_dim = 128;
  spec.train.steps = 1800;
  spec.train.batch_size = 8;
  spec.train.seq_len = 48;
  spec.train.peak_lr = 6e-3f;
  spec.train.warmup_steps = 60;
  spec.train.seed = 0x7B;
  spec.init_seed = 0x7B00;
  return spec;
}

ZooSpec llama13b_sim() {
  ZooSpec spec;
  spec.name = "llama13b-sim";
  spec.config.vocab_size = 64;
  spec.config.dim = 64;
  spec.config.n_layers = 5;
  spec.config.n_heads = 4;
  spec.config.ffn_dim = 160;
  spec.train.steps = 1800;
  spec.train.batch_size = 8;
  spec.train.seq_len = 48;
  spec.train.peak_lr = 5e-3f;
  spec.train.warmup_steps = 60;
  spec.train.seed = 0x13B;
  spec.init_seed = 0x13B00;
  return spec;
}

ZooSpec serve_sim() {
  ZooSpec spec;
  spec.name = "serve-sim";
  spec.config.vocab_size = 64;
  spec.config.dim = 128;
  spec.config.n_layers = 4;
  spec.config.n_heads = 4;
  spec.config.ffn_dim = 320;
  spec.train.steps = 1500;
  spec.train.batch_size = 8;
  spec.train.seq_len = 48;
  spec.train.peak_lr = 4e-3f;
  spec.train.warmup_steps = 60;
  spec.train.seed = 0x5E;
  spec.init_seed = 0x5E00;
  return spec;
}

ZooSpec draft_sim() {
  ZooSpec spec;
  spec.name = "draft-sim";
  spec.config.vocab_size = 64;
  spec.config.dim = 24;
  spec.config.n_layers = 2;
  spec.config.n_heads = 2;
  spec.config.ffn_dim = 48;
  spec.train.steps = 1200;
  spec.train.batch_size = 8;
  spec.train.seq_len = 48;
  spec.train.peak_lr = 8e-3f;
  spec.train.warmup_steps = 60;
  spec.train.seed = 0xD;
  spec.init_seed = 0xD00;
  return spec;
}

std::unique_ptr<StandardCorpora> make_standard_corpora() {
  return std::unique_ptr<StandardCorpora>(new StandardCorpora{
      Corpus("c4sim", c4sim_spec(64), 200000, 20000, 0xC4515EED),
      Corpus("wikisim", wikisim_spec(64), 100000, 20000, 0x3151CEED),
  });
}

ModelZoo::ModelZoo(std::string cache_dir) : cache_dir_(std::move(cache_dir)) {
  if (cache_dir_.empty()) {
    if (const char* env = std::getenv("APTQ_CACHE_DIR");
        env != nullptr && env[0] != '\0') {
      cache_dir_ = env;
    } else {
      cache_dir_ = ".cache/aptq";
    }
  }
}

std::string ModelZoo::checkpoint_path(const ZooSpec& spec) const {
  return cache_dir_ + "/" + spec.name + ".ckpt";
}

Model ModelZoo::get(const ZooSpec& spec, const StandardCorpora& corpora,
                    bool verbose) {
  spec.config.validate();
  const std::string path = checkpoint_path(spec);
  if (file_exists(path)) {
    // A checkpoint that fails to parse (format drift, truncation, bit rot)
    // is a cache miss, not a fatal error: warn and fall through to
    // retraining, which overwrites it. A checkpoint that parses but holds
    // a different config still throws — the caller asked for a model the
    // cache genuinely contradicts.
    bool usable = true;
    Model m;
    try {
      m = load_checkpoint(path);
    } catch (const Error& e) {
      usable = false;
      obs::log_warn("[zoo] discarding unreadable checkpoint " + path + " (" +
                    e.what() + "); retraining");
    }
    if (usable) {
      APTQ_CHECK(m.config == spec.config,
                 "ModelZoo: cached checkpoint has a stale config; delete " +
                     path);
      obs::log_debug("[zoo] " + spec.name + " loaded from cache: " + path);
      return m;
    }
  }
  // Cold cache: a full training run takes minutes — emit progress (step,
  // loss, ETA) through the leveled logger so the run is distinguishable
  // from a hang. Logs go to stderr; stdout stays machine-readable.
  obs::PhaseSpan train_phase("zoo.train");
  Model m = Model::init(spec.config, spec.init_seed);
  if (verbose) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "[zoo] training %s (%zu params, %zu steps)...",
                  spec.name.c_str(), m.parameter_count(), spec.train.steps);
    obs::log_info(line);
  }
  const Corpus* corpus_ptrs[2] = {&corpora.c4, &corpora.wiki};
  Timer timer;  // drives the ETA estimate only; phase timing is the span's
  TrainConfig tc = spec.train;
  if (verbose) {
    tc.log_every = spec.train.steps / 6;
  }
  train_model(m, std::span<const Corpus* const>(corpus_ptrs, 2), tc,
              [&](const TrainProgress& p) {
                if (!verbose || p.step == 0) {
                  return;
                }
                const double elapsed = timer.seconds();
                const double frac = static_cast<double>(p.step) /
                                    static_cast<double>(spec.train.steps);
                const double eta = elapsed * (1.0 - frac) / frac;
                char line[160];
                std::snprintf(line, sizeof(line),
                              "[zoo]   step %zu/%zu loss %.4f "
                              "(%.0fs elapsed, ETA %.0fs)",
                              p.step, spec.train.steps, p.loss, elapsed, eta);
                obs::log_info(line);
              });
  make_directories(cache_dir_);
  save_checkpoint(m, path);
  if (verbose) {
    char line[256];
    std::snprintf(line, sizeof(line), "[zoo] %s trained in %.0fs, cached at %s",
                  spec.name.c_str(), timer.seconds(), path.c_str());
    obs::log_info(line);
  }
  return m;
}

}  // namespace aptq
