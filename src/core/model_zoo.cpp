#include "core/model_zoo.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/io.hpp"
#include "util/timer.hpp"

namespace aptq {

ZooSpec llama7b_sim() {
  ZooSpec spec;
  spec.name = "llama7b-sim";
  spec.config.vocab_size = 64;
  spec.config.dim = 48;
  spec.config.n_layers = 4;
  spec.config.n_heads = 4;
  spec.config.ffn_dim = 128;
  spec.train.steps = 1800;
  spec.train.batch_size = 8;
  spec.train.seq_len = 48;
  spec.train.peak_lr = 6e-3f;
  spec.train.warmup_steps = 60;
  spec.train.seed = 0x7B;
  spec.init_seed = 0x7B00;
  return spec;
}

ZooSpec llama13b_sim() {
  ZooSpec spec;
  spec.name = "llama13b-sim";
  spec.config.vocab_size = 64;
  spec.config.dim = 64;
  spec.config.n_layers = 5;
  spec.config.n_heads = 4;
  spec.config.ffn_dim = 160;
  spec.train.steps = 1800;
  spec.train.batch_size = 8;
  spec.train.seq_len = 48;
  spec.train.peak_lr = 5e-3f;
  spec.train.warmup_steps = 60;
  spec.train.seed = 0x13B;
  spec.init_seed = 0x13B00;
  return spec;
}

std::unique_ptr<StandardCorpora> make_standard_corpora() {
  return std::unique_ptr<StandardCorpora>(new StandardCorpora{
      Corpus("c4sim", c4sim_spec(64), 200000, 20000, 0xC4515EED),
      Corpus("wikisim", wikisim_spec(64), 100000, 20000, 0x3151CEED),
  });
}

ModelZoo::ModelZoo(std::string cache_dir) : cache_dir_(std::move(cache_dir)) {
  if (cache_dir_.empty()) {
    if (const char* env = std::getenv("APTQ_CACHE_DIR");
        env != nullptr && env[0] != '\0') {
      cache_dir_ = env;
    } else {
      cache_dir_ = ".cache/aptq";
    }
  }
}

std::string ModelZoo::checkpoint_path(const ZooSpec& spec) const {
  return cache_dir_ + "/" + spec.name + ".ckpt";
}

Model ModelZoo::get(const ZooSpec& spec, const StandardCorpora& corpora,
                    bool verbose) {
  spec.config.validate();
  const std::string path = checkpoint_path(spec);
  if (file_exists(path)) {
    Model m = load_checkpoint(path);
    APTQ_CHECK(m.config == spec.config,
               "ModelZoo: cached checkpoint has a stale config; delete " +
                   path);
    return m;
  }
  if (verbose) {
    std::printf("[zoo] training %s (%zu params, %zu steps)...\n",
                spec.name.c_str(),
                Model::init(spec.config, spec.init_seed).parameter_count(),
                spec.train.steps);
  }
  Model m = Model::init(spec.config, spec.init_seed);
  const Corpus* corpus_ptrs[2] = {&corpora.c4, &corpora.wiki};
  Timer timer;
  TrainConfig tc = spec.train;
  if (verbose) {
    tc.log_every = spec.train.steps / 6;
  }
  train_model(m, std::span<const Corpus* const>(corpus_ptrs, 2), tc,
              [&](const TrainProgress& p) {
                if (verbose) {
                  std::printf("[zoo]   step %-5zu loss %.4f (%.0fs)\n", p.step,
                              p.loss, timer.seconds());
                  std::fflush(stdout);
                }
              });
  make_directories(cache_dir_);
  save_checkpoint(m, path);
  if (verbose) {
    std::printf("[zoo] %s trained in %.0fs, cached at %s\n", spec.name.c_str(),
                timer.seconds(), path.c_str());
  }
  return m;
}

}  // namespace aptq
