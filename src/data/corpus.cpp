#include "data/corpus.hpp"

namespace aptq {

Corpus::Corpus(std::string name, const MarkovSpec& spec,
               std::size_t train_tokens, std::size_t eval_tokens,
               std::uint64_t stream_seed)
    : name_(std::move(name)), source_(spec) {
  APTQ_CHECK(train_tokens >= 16 && eval_tokens >= 16,
             "Corpus: splits too small");
  Rng train_rng(stream_seed);
  Rng eval_rng(stream_seed ^ 0xE7A11C0FFEEull);
  train_ = source_.generate(train_tokens, train_rng);
  eval_ = source_.generate(eval_tokens, eval_rng, &eval_topics_);
}

TokenSeq Corpus::sample_train_segment(std::size_t len, Rng& rng) const {
  APTQ_CHECK(len > 0 && len <= train_.size(),
             "sample_train_segment: segment longer than split");
  const std::size_t start = rng.index(train_.size() - len + 1);
  return TokenSeq(train_.begin() + static_cast<std::ptrdiff_t>(start),
                  train_.begin() + static_cast<std::ptrdiff_t>(start + len));
}

std::vector<TokenSeq> Corpus::eval_segments(std::size_t len,
                                            std::size_t max_segments) const {
  APTQ_CHECK(len > 0, "eval_segments: len must be positive");
  std::vector<TokenSeq> out;
  for (std::size_t start = 0;
       start + len <= eval_.size() && out.size() < max_segments;
       start += len) {
    out.emplace_back(eval_.begin() + static_cast<std::ptrdiff_t>(start),
                     eval_.begin() + static_cast<std::ptrdiff_t>(start + len));
  }
  APTQ_CHECK(!out.empty(), "eval_segments: eval split shorter than one segment");
  return out;
}

double Corpus::oracle_eval_nll() const {
  return source_.oracle_nll(eval_, eval_topics_);
}

MarkovSpec c4sim_spec(std::size_t vocab_size) {
  MarkovSpec spec;
  spec.seed = 0xC4C4C4ull;
  spec.vocab_size = vocab_size;
  spec.topics = 4;
  spec.branching = 6;
  spec.zipf_alpha = 1.05;
  spec.smoothing = 0.08;
  spec.topic_switch_prob = 0.03;
  return spec;
}

MarkovSpec wikisim_spec(std::size_t vocab_size) {
  MarkovSpec spec;
  spec.seed = 0x31B1ull;
  spec.vocab_size = vocab_size;
  spec.topics = 2;
  spec.branching = 4;
  spec.zipf_alpha = 1.2;
  spec.smoothing = 0.05;
  spec.topic_switch_prob = 0.01;
  return spec;
}

std::vector<TokenSeq> sample_calibration_set(const Corpus& corpus,
                                             std::size_t n_segments,
                                             std::size_t segment_len,
                                             std::uint64_t seed) {
  APTQ_CHECK(n_segments > 0, "sample_calibration_set: need segments");
  Rng rng(seed);
  std::vector<TokenSeq> out;
  out.reserve(n_segments);
  for (std::size_t i = 0; i < n_segments; ++i) {
    out.push_back(corpus.sample_train_segment(segment_len, rng));
  }
  return out;
}

}  // namespace aptq
