// Token identifiers and vocabulary description for the synthetic corpora.
#pragma once

#include <cstdint>
#include <vector>

namespace aptq {

/// Token identifier; valid ids are [0, vocab_size).
using TokenId = std::int32_t;

/// A token sequence.
using TokenSeq = std::vector<TokenId>;

}  // namespace aptq
