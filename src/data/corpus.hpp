// Named synthetic corpora with train/eval splits and segment sampling —
// the offline substitutes for C4 (calibration + perplexity) and WikiText-2
// (perplexity), plus the calibration-set sampler used by the paper's
// "128 random segments" protocol.
#pragma once

#include <string>
#include <vector>

#include "data/markov.hpp"
#include "data/vocab.hpp"

namespace aptq {

/// A generated corpus with disjoint train and eval token streams.
class Corpus {
 public:
  /// Generates `train_tokens` + `eval_tokens` tokens from the source.
  Corpus(std::string name, const MarkovSpec& spec, std::size_t train_tokens,
         std::size_t eval_tokens, std::uint64_t stream_seed);

  const std::string& name() const { return name_; }
  const MarkovSource& source() const { return source_; }
  const TokenSeq& train_tokens() const { return train_; }
  const TokenSeq& eval_tokens() const { return eval_; }

  /// Random contiguous segment of length `len` from the train split.
  TokenSeq sample_train_segment(std::size_t len, Rng& rng) const;

  /// Deterministic partition of the eval split into `len`-token segments
  /// (up to `max_segments`; fewer if the split is too small).
  std::vector<TokenSeq> eval_segments(std::size_t len,
                                      std::size_t max_segments) const;

  /// Entropy floor of the eval split in nats/token (true-process NLL).
  double oracle_eval_nll() const;

 private:
  std::string name_;
  MarkovSource source_;
  TokenSeq train_;
  TokenSeq eval_;
  std::vector<std::uint8_t> eval_topics_;
};

/// "C4-like": web-style corpus — many topics, frequent topic switches,
/// wider branching (higher entropy).
MarkovSpec c4sim_spec(std::size_t vocab_size);

/// "WikiText-2-like": encyclopedic corpus — fewer topics, persistent topics,
/// narrower branching (lower entropy).
MarkovSpec wikisim_spec(std::size_t vocab_size);

/// Calibration set: `n_segments` random segments of `segment_len` tokens
/// from the corpus train split (the paper uses 128 segments from C4).
std::vector<TokenSeq> sample_calibration_set(const Corpus& corpus,
                                             std::size_t n_segments,
                                             std::size_t segment_len,
                                             std::uint64_t seed);

}  // namespace aptq
