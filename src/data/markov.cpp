#include "data/markov.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace aptq {

MarkovSource::MarkovSource(const MarkovSpec& spec) : spec_(spec) {
  const std::size_t v = spec.vocab_size;
  APTQ_CHECK(v >= 4, "MarkovSource: vocab_size too small");
  APTQ_CHECK(spec.topics >= 1, "MarkovSource: need at least one topic");
  APTQ_CHECK(spec.branching >= 1 && spec.branching <= v,
             "MarkovSource: branching out of range");
  APTQ_CHECK(spec.smoothing >= 0.0 && spec.smoothing < 1.0,
             "MarkovSource: smoothing out of range");

  Rng rng(spec.seed);

  // Zipfian unigram over a random permutation of token ids, so frequent
  // tokens are not clustered at small ids.
  std::vector<std::size_t> perm(v);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  unigram_.assign(v, 0.0f);
  double total = 0.0;
  for (std::size_t rank = 0; rank < v; ++rank) {
    const double p = 1.0 / std::pow(static_cast<double>(rank + 1),
                                    spec.zipf_alpha);
    unigram_[perm[rank]] = static_cast<float>(p);
    total += p;
  }
  for (float& p : unigram_) {
    p = static_cast<float>(p / total);
  }

  // Low-rank latent-factor transition model (see MarkovSpec): token factor
  // vectors e1/e2/f and per-topic mixing matrices M/N produce logits
  //   logit(next | a, b, topic) = f[next]·(M_t e1[b]) + 0.7·f[next]·(N_t e2[a])
  //                               + zipf_bias·log(unigram[next]),
  // which are truncated to the top-`branching` successors, softmaxed, and
  // smoothed with the unigram base.
  const std::size_t r = spec.latent_rank;
  APTQ_CHECK(r >= 2, "MarkovSource: latent_rank too small");
  const auto gauss_vec = [&rng](std::size_t n, double std_dev) {
    std::vector<double> x(n);
    for (auto& e : x) {
      e = rng.normal() * std_dev;
    }
    return x;
  };
  const std::vector<double> e1 = gauss_vec(v * r, 1.0);
  const std::vector<double> e2 = gauss_vec(v * r, 1.0);
  const std::vector<double> f = gauss_vec(v * r, 1.0);
  const double mix_std = 1.0 / std::sqrt(static_cast<double>(r));
  std::vector<std::vector<double>> topic_m, topic_n;
  for (std::size_t t = 0; t < spec.topics; ++t) {
    topic_m.push_back(gauss_vec(r * r, mix_std));
    topic_n.push_back(gauss_vec(r * r, mix_std));
  }

  table_.assign(spec.topics * v * v * v, 0.0f);
  std::vector<double> m_e1(r), n_e2(r), logits(v);
  std::vector<std::size_t> order(v);
  for (std::size_t topic = 0; topic < spec.topics; ++topic) {
    const auto& mt = topic_m[topic];
    const auto& nt = topic_n[topic];
    for (std::size_t a = 0; a < v; ++a) {
      for (std::size_t i = 0; i < r; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < r; ++j) {
          acc += nt[i * r + j] * e2[a * r + j];
        }
        n_e2[i] = acc;
      }
      for (std::size_t b = 0; b < v; ++b) {
        for (std::size_t i = 0; i < r; ++i) {
          double acc = 0.0;
          for (std::size_t j = 0; j < r; ++j) {
            acc += mt[i * r + j] * e1[b * r + j];
          }
          m_e1[i] = acc;
        }
        for (std::size_t n = 0; n < v; ++n) {
          double s = 0.0;
          for (std::size_t i = 0; i < r; ++i) {
            s += f[n * r + i] * (m_e1[i] + 0.7 * n_e2[i]);
          }
          logits[n] = spec.logit_scale * s +
                      spec.zipf_bias * std::log(unigram_[n]);
        }
        // Keep only the top-`branching` successors.
        std::iota(order.begin(), order.end(), 0);
        std::partial_sort(order.begin(),
                          order.begin() + static_cast<std::ptrdiff_t>(
                                              spec.branching),
                          order.end(), [&logits](std::size_t x, std::size_t y) {
                            return logits[x] > logits[y];
                          });
        const double max_logit = logits[order[0]];
        double mass = 0.0;
        std::vector<double> w(spec.branching);
        for (std::size_t s = 0; s < spec.branching; ++s) {
          w[s] = std::exp(logits[order[s]] - max_logit);
          mass += w[s];
        }
        float* out = table_.data() + ((topic * v + a) * v + b) * v;
        const double peak_share = 1.0 - spec.smoothing;
        for (std::size_t s = 0; s < spec.branching; ++s) {
          out[order[s]] += static_cast<float>(peak_share * w[s] / mass);
        }
        for (std::size_t n = 0; n < v; ++n) {
          out[n] += static_cast<float>(spec.smoothing) * unigram_[n];
        }
      }
    }
  }
}

std::span<const float> MarkovSource::row(std::size_t topic, TokenId prev2,
                                         TokenId prev1) const {
  const std::size_t v = spec_.vocab_size;
  APTQ_CHECK(topic < spec_.topics, "MarkovSource: topic out of range");
  APTQ_CHECK(prev2 >= 0 && static_cast<std::size_t>(prev2) < v &&
                 prev1 >= 0 && static_cast<std::size_t>(prev1) < v,
             "MarkovSource: token out of range");
  return {table_.data() +
              ((topic * v + static_cast<std::size_t>(prev2)) * v +
               static_cast<std::size_t>(prev1)) *
                  v,
          v};
}

TokenSeq MarkovSource::generate(std::size_t n, Rng& rng,
                                std::vector<std::uint8_t>* topic_trace) const {
  TokenSeq out;
  out.reserve(n);
  if (topic_trace != nullptr) {
    topic_trace->clear();
    topic_trace->reserve(n);
  }
  std::size_t topic = rng.index(spec_.topics);
  TokenId prev2 = static_cast<TokenId>(rng.categorical(unigram_));
  TokenId prev1 = static_cast<TokenId>(rng.categorical(unigram_));
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < spec_.topic_switch_prob) {
      topic = rng.index(spec_.topics);
    }
    const TokenId next =
        static_cast<TokenId>(rng.categorical(row(topic, prev2, prev1)));
    out.push_back(next);
    if (topic_trace != nullptr) {
      topic_trace->push_back(static_cast<std::uint8_t>(topic));
    }
    prev2 = prev1;
    prev1 = next;
  }
  return out;
}

TokenSeq MarkovSource::continue_sequence(TokenId prev2, TokenId prev1,
                                         std::size_t topic, std::size_t n,
                                         Rng& rng) const {
  TokenSeq out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TokenId next =
        static_cast<TokenId>(rng.categorical(row(topic, prev2, prev1)));
    out.push_back(next);
    prev2 = prev1;
    prev1 = next;
  }
  return out;
}

TokenId MarkovSource::sample_alternative(TokenId prev2, TokenId prev1,
                                         std::size_t topic, TokenId exclude,
                                         Rng& rng) const {
  const auto r = row(topic, prev2, prev1);
  APTQ_CHECK(exclude >= 0 && static_cast<std::size_t>(exclude) < r.size(),
             "sample_alternative: exclude out of range");
  std::vector<float> masked(r.begin(), r.end());
  masked[static_cast<std::size_t>(exclude)] = 0.0f;
  return static_cast<TokenId>(rng.categorical(masked));
}

double MarkovSource::probability(TokenId prev2, TokenId prev1, TokenId next,
                                 std::size_t topic) const {
  const auto r = row(topic, prev2, prev1);
  APTQ_CHECK(next >= 0 && static_cast<std::size_t>(next) < r.size(),
             "MarkovSource: next token out of range");
  return r[static_cast<std::size_t>(next)];
}

double MarkovSource::oracle_nll(
    const TokenSeq& tokens, const std::vector<std::uint8_t>& topic_trace) const {
  APTQ_CHECK(tokens.size() == topic_trace.size(),
             "oracle_nll: trace length mismatch");
  APTQ_CHECK(tokens.size() >= 3, "oracle_nll: sequence too short");
  double nll = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const double p = probability(tokens[i - 2], tokens[i - 1], tokens[i],
                                 topic_trace[i]);
    nll -= std::log(std::max(p, 1e-12));
    ++count;
  }
  return nll / static_cast<double>(count);
}

}  // namespace aptq
