// Multi-topic order-2 Markov token source — the synthetic stand-in for the
// C4 and WikiText-2 corpora (see DESIGN.md §1).
//
// Each topic owns an order-2 transition table over the vocabulary with a
// small successor branching factor (so sequences are genuinely predictable
// and perplexity is meaningful), built on top of a Zipfian unigram base
// distribution. A hidden topic state switches with a small per-token
// probability, which makes longer-range context (and therefore attention)
// informative — exactly the property APTQ's attention-aware Hessian needs
// to have signal.
#pragma once

#include <vector>

#include "data/vocab.hpp"
#include "util/rng.hpp"

namespace aptq {

/// Parameters of a synthetic Markov corpus.
///
/// Transition rows are built from a low-rank latent-factor model (token
/// factor vectors combined through per-topic mixing matrices), truncated to
/// the top-`branching` successors per context. The low-rank construction is
/// what makes the process *learnable* by a small transformer — successor
/// structure is shared across contexts instead of being a random lookup
/// table — mirroring the compositional statistics of natural text.
struct MarkovSpec {
  std::uint64_t seed = 1;       ///< table-construction seed
  std::size_t vocab_size = 64;  ///< number of distinct tokens
  std::size_t topics = 4;       ///< hidden topic count
  std::size_t branching = 6;    ///< successors kept per (prev2, prev1) context
  double zipf_alpha = 1.1;      ///< unigram base skew
  double smoothing = 0.05;      ///< mass mixed in from the unigram base
  double topic_switch_prob = 0.02;  ///< per-token topic resample probability
  std::size_t latent_rank = 10;     ///< rank of the factor model
  double logit_scale = 2.0;         ///< sharpness of transition rows
  double zipf_bias = 0.3;           ///< pull of successor logits toward unigram
};

/// Order-2 Markov chain with hidden topics. Construction builds the dense
/// transition tables deterministically from the spec seed; generation is
/// driven by a caller-supplied Rng so independent streams can be drawn.
class MarkovSource {
 public:
  explicit MarkovSource(const MarkovSpec& spec);

  const MarkovSpec& spec() const { return spec_; }

  /// Generate `n` tokens. If `topic_trace` is non-null it receives the
  /// hidden topic id active at each emitted token (used by oracle_nll).
  TokenSeq generate(std::size_t n, Rng& rng,
                    std::vector<std::uint8_t>* topic_trace = nullptr) const;

  /// Continue a chain for `n` tokens from the context (prev2, prev1) under a
  /// fixed topic (no topic switching) — used by the zero-shot task
  /// generators to produce true continuations and controlled distractors.
  TokenSeq continue_sequence(TokenId prev2, TokenId prev1, std::size_t topic,
                             std::size_t n, Rng& rng) const;

  /// True conditional probability p(next | prev2, prev1, topic).
  double probability(TokenId prev2, TokenId prev1, TokenId next,
                     std::size_t topic) const;

  /// Sample a successor from p(· | prev2, prev1, topic) with `exclude`
  /// masked out (renormalized) — a plausible-but-not-taken branch, used to
  /// build near-miss distractors for the hardest zero-shot tasks.
  TokenId sample_alternative(TokenId prev2, TokenId prev1, std::size_t topic,
                             TokenId exclude, Rng& rng) const;

  /// Average negative log-likelihood (nats/token) of `tokens` under the true
  /// generating process given the recorded topic trace — the entropy floor
  /// no model can beat. Scored from the third token onward.
  double oracle_nll(const TokenSeq& tokens,
                    const std::vector<std::uint8_t>& topic_trace) const;

  /// Unigram base distribution (Zipf over a seed-permuted rank order).
  const std::vector<float>& unigram() const { return unigram_; }

 private:
  std::span<const float> row(std::size_t topic, TokenId prev2,
                             TokenId prev1) const;

  MarkovSpec spec_;
  std::vector<float> unigram_;  // V
  // topics × V × V contexts, each a V-length probability row.
  std::vector<float> table_;
};

}  // namespace aptq
