// QuantizedModel: an evaluable model with quantized weights plus the
// per-layer bookkeeping (bits, packed size, solver losses) experiments
// report against.
#pragma once

#include <string>
#include <vector>

#include "model/forward.hpp"
#include "model/model.hpp"
#include "quant/qformat.hpp"

namespace aptq {

/// Per-layer record of a quantization run.
struct QuantizedLayerInfo {
  std::string name;
  double bits = 0.0;          ///< effective bits (can be fractional: OWQ/PB-LLM)
  std::size_t weight_count = 0;
  std::size_t packed_bytes = 0;  ///< bit-packed storage incl. group params
  double proxy_loss = 0.0;       ///< GPTQ Σe² (0 for closed-form methods)
  double recon_error = 0.0;      ///< tr(ΔW·H·ΔWᵀ) where available
};

/// An evaluable quantized model with its metadata.
struct QuantizedModel {
  Model model;                 ///< weights already dequantized in place
  std::string method;          ///< e.g. "APTQ-75%"
  std::vector<QuantizedLayerInfo> layers;
  ForwardOptions forward_options;  ///< e.g. A8 fake-quant for SmoothQuant

  /// Size-weighted average bits over the quantized layers (eq. 18's
  /// realized value).
  double average_bits() const;

  /// Total packed storage across quantized layers.
  std::size_t packed_bytes() const;

  /// Sum of per-layer reconstruction errors.
  double total_recon_error() const;
};

/// Build the per-layer info record for an int-grid layer, including packing
/// the weights for byte-accurate storage accounting. `w_outmajor` must
/// already hold the final quantized (dequantized-value) weights.
QuantizedLayerInfo make_layer_info(const std::string& name,
                                   const Matrix& w_outmajor,
                                   const QuantSpec& spec, double proxy_loss,
                                   double recon_error);

}  // namespace aptq
