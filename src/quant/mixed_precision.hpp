// Hessian-trace-driven mixed-precision bit allocation (paper §3.3, step 2
// of Algorithm 1) plus the manual block-wise allocator used as the Table 3
// ablation baseline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "quant/aptq.hpp"

namespace aptq {

/// Sensitivity ranking entry for one layer.
struct LayerSensitivity {
  std::string name;
  double sensitivity = 0.0;      ///< avg Hessian trace (optionally × error)
  std::size_t weight_count = 0;
  std::size_t block = 0;
};

/// How layer sensitivity is scored.
enum class SensitivityMetric {
  avg_trace,        ///< tr(H)/d — the paper's metric
  trace_times_err,  ///< tr(H)/d × ||W − quant₂(W)||² — HAWQ-V2-style (ablation)
};

/// Build the sensitivity ranking from calibration output. For
/// trace_times_err, `model` supplies the weights to measure 2-bit error on.
std::vector<LayerSensitivity> rank_sensitivities(
    const CalibrationResult& calibration, const Model& model,
    SensitivityMetric metric = SensitivityMetric::avg_trace);

/// A per-layer bit assignment.
using BitAllocation = std::map<std::string, int>;

/// APTQ allocation: sort by descending sensitivity and assign `high_bits`
/// until at least fraction `ratio_high` of all weights is covered; the rest
/// get `low_bits` (eq. 18: average bits = 4R + 2(1−R) for 4/2).
BitAllocation allocate_by_sensitivity(
    const std::vector<LayerSensitivity>& ranking, double ratio_high,
    int high_bits = 4, int low_bits = 2);

/// Manual block-wise baseline (Table 3): whole transformer blocks are
/// uniformly assigned `high_bits` in network order (block 0 first) until the
/// weight-fraction target is reached; remaining blocks get `low_bits`.
BitAllocation allocate_blockwise(
    const std::vector<LayerSensitivity>& ranking, double ratio_high,
    int high_bits = 4, int low_bits = 2);

/// Generalized allocator (extension beyond the paper's 2/4 scheme): given a
/// bit-width menu and a target average, greedily upgrade the layer with the
/// best sensitivity-weighted error reduction per added bit until the budget
/// is exhausted. `model` supplies the weights whose per-width RTN errors
/// anchor the benefit estimates.
BitAllocation allocate_knapsack(const std::vector<LayerSensitivity>& ranking,
                                const Model& model, double target_avg_bits,
                                std::span<const int> bit_menu,
                                std::size_t group_size = 16);

/// Actual average bits of an allocation, weighted by layer sizes.
double average_bits(const BitAllocation& allocation,
                    const std::vector<LayerSensitivity>& ranking);

/// Fraction of weights assigned `high_bits`.
double high_bit_fraction(const BitAllocation& allocation,
                         const std::vector<LayerSensitivity>& ranking,
                         int high_bits = 4);

}  // namespace aptq
