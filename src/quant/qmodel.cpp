#include "quant/qmodel.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace aptq {

double QuantizedModel::average_bits() const {
  APTQ_CHECK(!layers.empty(), "QuantizedModel: no quantized layers");
  double bits = 0.0;
  double total = 0.0;
  for (const auto& layer : layers) {
    bits += layer.bits * static_cast<double>(layer.weight_count);
    total += static_cast<double>(layer.weight_count);
  }
  return bits / total;
}

std::size_t QuantizedModel::packed_bytes() const {
  std::size_t total = 0;
  for (const auto& layer : layers) {
    total += layer.packed_bytes;
  }
  return total;
}

double QuantizedModel::total_recon_error() const {
  double total = 0.0;
  for (const auto& layer : layers) {
    total += layer.recon_error;
  }
  return total;
}

QuantizedLayerInfo make_layer_info(const std::string& name,
                                   const Matrix& w_outmajor,
                                   const QuantSpec& spec, double proxy_loss,
                                   double recon_error) {
  QuantizedLayerInfo info;
  info.name = name;
  info.bits = spec.bits;
  info.weight_count = w_outmajor.size();
  const QuantizedLinear packed(w_outmajor, spec);
  info.packed_bytes = packed.storage_bytes();
  info.proxy_loss = proxy_loss;
  info.recon_error = recon_error;
  // The grid scales the (optional) MSE clip search settled on.
  obs::layer_stat(name, "quant.clip_scale_mean", packed.mean_group_scale());
  return info;
}

}  // namespace aptq
