// Hessian accumulation for second-order quantization.
//
// For a linear layer with input rows x_t the (input-side Kronecker factor
// of the) Gauss–Newton Hessian is H = 2·Σ_t γ_t·x_t x_tᵀ. GPTQ uses γ ≡ 1
// ("what goes through the layer matters equally"); APTQ's attention-aware
// variant supplies γ_t from the attention-block Jacobian so tokens that
// influence the attention output more count more (DESIGN.md §2.2).
//
// The accumulator also provides the per-layer average trace used as the
// sensitivity metric by the mixed-precision allocator (paper §3.3), and a
// Hutchinson stochastic estimator of the same trace (HAWQ-V2's approach)
// for cross-validation in the ablation bench.
#pragma once

#include <span>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace aptq {

/// Streaming accumulator of H = 2·Σ γ_t x_t x_tᵀ over calibration tokens.
class HessianAccumulator {
 public:
  explicit HessianAccumulator(std::size_t dim);

  std::size_t dim() const { return h_.rows(); }
  std::size_t tokens_seen() const { return tokens_; }

  /// Add one token's contribution with weight `gamma`.
  void add_token(std::span<const float> x, float gamma = 1.0f);

  /// Add every row of `x`; `gamma` is either empty (all ones) or per-row.
  /// Runs the register-tiled SYRK kernel (upper triangle only, half the
  /// flops of the full product). Tile/chunk boundaries depend only on the
  /// shape, so the result is bitwise identical at any thread count; it is
  /// tolerance-equal (not bitwise) to the token-by-token add_token path
  /// because the SYRK panels reassociate the token summation
  /// (docs/KERNELS.md).
  void add_matrix(const Matrix& x, std::span<const float> gamma = {});

  /// The accumulated Hessian, normalized by the token count (the scale-free
  /// normalization GPTQ uses: H = 2/N · Σ γ x xᵀ).
  Matrix finalized() const;

  /// finalized() plus dampening: H += damp·mean(diag(H))·I, and dead columns
  /// (zero diagonal) pinned to 1 so the factorization is well posed.
  Matrix finalized_damped(double damp) const;

  /// Average trace tr(H)/dim of the finalized Hessian — the layer
  /// sensitivity metric of paper §3.3 (cheap: no matrix needed).
  double average_trace() const;

 private:
  Matrix h_;           // running Σ γ x xᵀ (upper triangle mirrored at read)
  std::size_t tokens_ = 0;
};

/// Hutchinson trace estimator: tr(H) ≈ mean_i zᵢᵀ H zᵢ with Rademacher zᵢ.
/// Included as the HAWQ-V2 reference estimator; the direct trace is exact
/// here, so this exists for the estimator-agreement ablation.
double hutchinson_trace(const Matrix& h, std::size_t probes, Rng& rng);

/// Indices of dead columns (zero diagonal) in a Hessian.
std::vector<std::size_t> dead_columns(const Matrix& h);

}  // namespace aptq
