#include "quant/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "model/forward.hpp"
#include "tensor/ops.hpp"
#include "util/table.hpp"

namespace aptq {

DriftReport compare_models(const Model& reference, const Model& quantized,
                           std::span<const TokenSeq> segments) {
  APTQ_CHECK(reference.config == quantized.config,
             "compare_models: configuration mismatch");
  APTQ_CHECK(!segments.empty(), "compare_models: no segments");
  const std::size_t n_layers = reference.config.n_layers;

  DriftReport report;
  report.blocks.resize(n_layers);
  for (std::size_t b = 0; b < n_layers; ++b) {
    report.blocks[b].block = b;
  }
  std::vector<double> block_ref_energy(n_layers, 0.0);
  double logits_energy = 0.0;
  std::size_t block_elems = 0;
  std::size_t logit_elems = 0;
  std::size_t kl_rows = 0;

  ForwardCache ref_cache, q_cache;
  std::vector<double> pr, pq;
  for (const auto& segment : segments) {
    const Matrix ref_logits = model_forward(reference, segment, ref_cache);
    const Matrix q_logits = model_forward(quantized, segment, q_cache);
    for (std::size_t b = 0; b < n_layers; ++b) {
      const Matrix& xr = ref_cache.blocks[b].x_out;
      const Matrix& xq = q_cache.blocks[b].x_out;
      for (std::size_t i = 0; i < xr.size(); ++i) {
        const double d = static_cast<double>(xr.flat()[i]) - xq.flat()[i];
        report.blocks[b].mse += d * d;
        block_ref_energy[b] +=
            static_cast<double>(xr.flat()[i]) * xr.flat()[i];
      }
    }
    block_elems += ref_cache.blocks[0].x_out.size();
    for (std::size_t i = 0; i < ref_logits.size(); ++i) {
      const double d =
          static_cast<double>(ref_logits.flat()[i]) - q_logits.flat()[i];
      report.logits_mse += d * d;
      logits_energy +=
          static_cast<double>(ref_logits.flat()[i]) * ref_logits.flat()[i];
    }
    logit_elems += ref_logits.size();

    // Mean KL(ref ‖ quant) over positions.
    const std::size_t v = ref_logits.cols();
    pr.resize(v);
    pq.resize(v);
    for (std::size_t t = 0; t < ref_logits.rows(); ++t) {
      const auto softmax_row = [v](std::span<const float> in,
                                   std::vector<double>& out) {
        double mx = in[0];
        for (const float x : in) {
          mx = std::max(mx, static_cast<double>(x));
        }
        double sum = 0.0;
        for (std::size_t i = 0; i < v; ++i) {
          out[i] = std::exp(in[i] - mx);
          sum += out[i];
        }
        for (auto& x : out) {
          x /= sum;
        }
      };
      softmax_row(ref_logits.row(t), pr);
      softmax_row(q_logits.row(t), pq);
      for (std::size_t i = 0; i < v; ++i) {
        if (pr[i] > 1e-12) {
          report.kl_divergence += pr[i] * std::log(pr[i] /
                                                   std::max(pq[i], 1e-12));
        }
      }
      ++kl_rows;
    }
  }

  for (std::size_t b = 0; b < n_layers; ++b) {
    report.blocks[b].relative =
        block_ref_energy[b] > 0.0
            ? report.blocks[b].mse / block_ref_energy[b]
            : 0.0;
    report.blocks[b].mse /= static_cast<double>(block_elems);
  }
  report.logits_relative =
      logits_energy > 0.0 ? report.logits_mse / logits_energy : 0.0;
  report.logits_mse /= static_cast<double>(logit_elems);
  report.kl_divergence /= static_cast<double>(kl_rows);
  return report;
}

std::string render_drift_report(const DriftReport& report) {
  TextTable table({"stage", "MSE", "relative"});
  for (const auto& b : report.blocks) {
    table.add_row({"block " + std::to_string(b.block),
                   fmt_fixed(b.mse, 6), fmt_percent(b.relative, 3)});
  }
  table.add_row({"logits", fmt_fixed(report.logits_mse, 6),
                 fmt_percent(report.logits_relative, 3)});
  std::string out = table.render();
  out += "mean KL(ref || quant): " + fmt_fixed(report.kl_divergence, 6) +
         " nats\n";
  return out;
}

}  // namespace aptq
