// APTQ calibration: attention-aware Hessian collection (paper §3.2) and the
// layer-sensitivity statistics feeding mixed-precision allocation (§3.3).
//
// Realization of eqs. (7)-(15): for each attention projection the Hessian is
// H = 2·Σ_t γ_t·x_t x_tᵀ, where γ_t is the squared Frobenius norm of the
// Jacobian of the attention-block output F with respect to the projection's
// output at token t, estimated by Hutchinson probes through the *real*
// backward pass (softmax, QKᵀ/PV matmuls, RoPE, head concat):
//   γ_t = E_u ||∂⟨u, F⟩/∂(out_t)||²/d   with u ~ N(0, I).
// For o_proj F is linear in W_O, so γ ≡ 1 and H reduces exactly to GPTQ's
// 2XXᵀ over the concatenated heads (eq. 9); feed-forward layers are plain
// GPTQ Hessians per the paper ("Derivatives for Different Quantization
// Layers"). See DESIGN.md §2.2 for the derivation.
#pragma once

#include <string>
#include <vector>

#include "data/vocab.hpp"
#include "model/model.hpp"
#include "quant/hessian.hpp"

namespace aptq {

/// Which Hessian to build for attention projections.
enum class HessianMode {
  gptq,  ///< plain 2XXᵀ everywhere (the GPTQ baseline)
  aptq,  ///< γ-weighted attention-aware Hessians for q/k/v (the paper)
};

/// Calibration options.
struct CalibConfig {
  HessianMode mode = HessianMode::aptq;
  std::size_t probes = 2;        ///< Hutchinson probes per segment per block
  std::uint64_t seed = 0xCA11B;  ///< probe RNG seed
  bool include_lm_head = false;
};

/// Hessian + statistics for one quantizable layer.
struct LayerCalibration {
  std::string name;
  LinearKind kind = LinearKind::q_proj;
  std::size_t block = 0;
  Matrix hessian;            ///< finalized, undamped (d_in × d_in)
  double avg_trace = 0.0;    ///< tr(H)/d_in — the §3.3 sensitivity metric
  std::size_t weight_count = 0;
  double gamma_mean = 1.0;   ///< mean token weight (1.0 in gptq mode)
};

/// Calibration output for a set of layers, in network order.
struct CalibrationResult {
  std::vector<LayerCalibration> layers;

  const LayerCalibration& by_name(const std::string& name) const;
};

/// Collect Hessians for every quantizable layer of `model` over the
/// calibration segments (one forward + `probes` attention-probe backwards
/// per segment in aptq mode).
CalibrationResult collect_calibration(const Model& model,
                                      std::span<const TokenSeq> segments,
                                      const CalibConfig& config);

/// Collect Hessians for the seven linear layers of a single block — the
/// inner step of the sequential quantization pipeline, where block b's
/// Hessians must be computed with blocks 0..b-1 already quantized.
CalibrationResult collect_block_calibration(const Model& model,
                                            std::span<const TokenSeq> segments,
                                            std::size_t block,
                                            const CalibConfig& config);

/// Per-token γ weights for one block's attention projections.
struct AttentionGammas {
  std::vector<float> q, k, v;  ///< per token; o_proj uses γ ≡ 1 (eq. 9)
};

/// Compute γ for one block from its cached forward state by running
/// `probes` random-seed probe backwards (exposed for tests/ablation).
AttentionGammas attention_gammas(const Model& model, std::size_t block,
                                 const struct BlockCache& cache,
                                 std::size_t probes, Rng& rng);

}  // namespace aptq
