#include "quant/packed_model.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace aptq {

namespace {

constexpr std::uint32_t kPackedMagic = 0x41505150u;  // "APQP"
constexpr std::uint32_t kPackedVersion = 1u;

void write_matrix(BinaryWriter& w, const Matrix& m) {
  w.write_u64(m.rows());
  w.write_u64(m.cols());
  std::vector<float> flat(m.flat().begin(), m.flat().end());
  w.write_f32_vector(flat);
}

Matrix read_matrix(BinaryReader& r) {
  const std::size_t rows = r.read_u64();
  const std::size_t cols = r.read_u64();
  const std::vector<float> flat = r.read_f32_vector();
  APTQ_CHECK(flat.size() == rows * cols, "packed model: matrix corrupt");
  Matrix m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

}  // namespace

PackedModel PackedModel::pack_impl(
    const Model& model, const std::map<std::string, QuantSpec>& specs) {
  PackedModel pm;
  pm.config_ = model.config;
  pm.tok_embed_ = model.tok_embed;
  pm.final_norm_ = model.final_norm;
  pm.lm_head_ = model.lm_head;
  for (const auto& block : model.blocks) {
    pm.attn_norms_.push_back(block.attn_norm);
    pm.ffn_norms_.push_back(block.ffn_norm);
  }
  auto& mutable_model = const_cast<Model&>(model);
  for (const auto& ref : collect_linears(mutable_model)) {
    const auto it = specs.find(ref.name);
    APTQ_CHECK(it != specs.end(),
               "PackedModel: no spec for layer " + ref.name);
    // Pack in the out-major orientation (groups along the input dim).
    pm.linears_.emplace_back(ref.weight->transposed(), it->second);
  }
  return pm;
}

PackedModel PackedModel::pack(const QuantizedModel& qm,
                              std::size_t group_size) {
  std::map<std::string, QuantSpec> specs;
  for (const auto& layer : qm.layers) {
    const double rounded = std::round(layer.bits);
    APTQ_CHECK(layer.bits == rounded && rounded >= 1 && rounded <= 8,
               "PackedModel: layer " + layer.name +
                   " has non-packable bit width");
    QuantSpec spec;
    spec.bits = static_cast<int>(rounded);
    spec.group_size = group_size;
    specs[layer.name] = spec;
  }
  return pack_impl(qm.model, specs);
}

PackedModel PackedModel::pack_uniform(const Model& model,
                                      const QuantSpec& spec) {
  std::map<std::string, QuantSpec> specs;
  auto& mutable_model = const_cast<Model&>(model);
  for (const auto& ref : collect_linears(mutable_model)) {
    specs[ref.name] = spec;
  }
  return pack_impl(model, specs);
}

Model PackedModel::unpack() const {
  Model m;
  m.config = config_;
  m.tok_embed = tok_embed_;
  m.final_norm = final_norm_;
  m.lm_head = lm_head_;
  m.blocks.resize(config_.n_layers);
  for (std::size_t b = 0; b < config_.n_layers; ++b) {
    auto& blk = m.blocks[b];
    blk.attn_norm = attn_norms_[b];
    blk.ffn_norm = ffn_norms_[b];
    const std::size_t base = b * 7;
    blk.wq = linears_[base + 0].dequantize().transposed();
    blk.wk = linears_[base + 1].dequantize().transposed();
    blk.wv = linears_[base + 2].dequantize().transposed();
    blk.wo = linears_[base + 3].dequantize().transposed();
    blk.w_gate = linears_[base + 4].dequantize().transposed();
    blk.w_up = linears_[base + 5].dequantize().transposed();
    blk.w_down = linears_[base + 6].dequantize().transposed();
  }
  return m;
}

Matrix PackedModel::forward(std::span<const TokenId> tokens) const {
  const auto& cfg = config_;
  APTQ_CHECK(linears_.size() == cfg.n_layers * 7,
             "PackedModel: not initialized");
  const std::size_t t_len = tokens.size();
  APTQ_CHECK(t_len >= 1, "PackedModel::forward: empty input");
  const std::size_t d = cfg.dim;
  const std::size_t hd = cfg.head_dim();
  const float inv_sqrt_hd = 1.0f / std::sqrt(static_cast<float>(hd));

  Matrix x(t_len, d);
  for (std::size_t t = 0; t < t_len; ++t) {
    const TokenId tok = tokens[t];
    APTQ_CHECK(tok >= 0 && static_cast<std::size_t>(tok) < cfg.vocab_size,
               "PackedModel::forward: token out of range");
    const auto src = tok_embed_.row(static_cast<std::size_t>(tok));
    std::copy(src.begin(), src.end(), x.row(t).begin());
  }

  Matrix normed;
  std::vector<float> inv_rms;
  for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
    const std::size_t base = layer * 7;
    rmsnorm_forward(x, attn_norms_[layer], cfg.norm_eps, normed, inv_rms);

    Matrix q = linears_[base + 0].matmul_transposed(normed);
    Matrix k = linears_[base + 1].matmul_transposed(normed);
    const Matrix v = linears_[base + 2].matmul_transposed(normed);
    rope_apply(q, hd, cfg.rope_theta);
    rope_apply(k, hd, cfg.rope_theta);

    Matrix attn_cat(t_len, d);
    const std::size_t group_factor = cfg.group_factor();
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
      const std::size_t g = h / group_factor;  // shared kv head (GQA)
      const Matrix qh = extract_head(q, h, hd);
      const Matrix kh = extract_head(k, g, hd);
      const Matrix vh = extract_head(v, g, hd);
      Matrix scores(t_len, t_len);
      gemm(qh, Trans::no, kh, Trans::yes, scores, inv_sqrt_hd);
      softmax_rows(scores, /*causal_offset=*/0);
      accumulate_head(attn_cat, matmul(scores, vh), h, hd);
    }
    axpy(1.0f, linears_[base + 3].matmul_transposed(attn_cat), x);

    rmsnorm_forward(x, ffn_norms_[layer], cfg.norm_eps, normed, inv_rms);
    const Matrix gate_pre = linears_[base + 4].matmul_transposed(normed);
    const Matrix up = linears_[base + 5].matmul_transposed(normed);
    Matrix act;
    silu(gate_pre, act);
    for (std::size_t i = 0; i < act.size(); ++i) {
      act.flat()[i] *= up.flat()[i];
    }
    axpy(1.0f, linears_[base + 6].matmul_transposed(act), x);
  }

  rmsnorm_forward(x, final_norm_, cfg.norm_eps, normed, inv_rms);
  return matmul(normed, lm_head_);
}

std::size_t PackedModel::linear_storage_bytes() const {
  std::size_t total = 0;
  for (const auto& q : linears_) {
    total += q.storage_bytes();
  }
  return total;
}

std::size_t PackedModel::total_storage_bytes() const {
  std::size_t total = linear_storage_bytes();
  total += tok_embed_.size() * sizeof(float);
  total += lm_head_.size() * sizeof(float);
  total += final_norm_.size() * sizeof(float);
  for (const auto& v : attn_norms_) {
    total += v.size() * sizeof(float);
  }
  for (const auto& v : ffn_norms_) {
    total += v.size() * sizeof(float);
  }
  return total;
}

void PackedModel::save(const std::string& path) const {
  BinaryWriter w(path);
  w.write_u32(kPackedMagic);
  w.write_u32(kPackedVersion);
  w.write_u64(config_.vocab_size);
  w.write_u64(config_.dim);
  w.write_u64(config_.n_layers);
  w.write_u64(config_.n_heads);
  w.write_u64(config_.ffn_dim);
  w.write_u64(config_.n_kv_heads);
  w.write_f32(config_.rope_theta);
  w.write_f32(config_.norm_eps);
  write_matrix(w, tok_embed_);
  for (std::size_t b = 0; b < config_.n_layers; ++b) {
    w.write_f32_vector(attn_norms_[b]);
    w.write_f32_vector(ffn_norms_[b]);
  }
  w.write_f32_vector(final_norm_);
  write_matrix(w, lm_head_);
  w.write_u64(linears_.size());
  for (const auto& q : linears_) {
    q.serialize(w);
  }
}

PackedModel PackedModel::load(const std::string& path) {
  BinaryReader r(path);
  APTQ_CHECK(r.read_u32() == kPackedMagic, "packed model: bad magic " + path);
  APTQ_CHECK(r.read_u32() == kPackedVersion,
             "packed model: unsupported version " + path);
  PackedModel pm;
  pm.config_.vocab_size = r.read_u64();
  pm.config_.dim = r.read_u64();
  pm.config_.n_layers = r.read_u64();
  pm.config_.n_heads = r.read_u64();
  pm.config_.ffn_dim = r.read_u64();
  pm.config_.n_kv_heads = r.read_u64();
  pm.config_.rope_theta = r.read_f32();
  pm.config_.norm_eps = r.read_f32();
  pm.config_.validate();
  pm.tok_embed_ = read_matrix(r);
  for (std::size_t b = 0; b < pm.config_.n_layers; ++b) {
    pm.attn_norms_.push_back(r.read_f32_vector());
    pm.ffn_norms_.push_back(r.read_f32_vector());
  }
  pm.final_norm_ = r.read_f32_vector();
  pm.lm_head_ = read_matrix(r);
  const std::uint64_t n = r.read_u64();
  APTQ_CHECK(n == pm.config_.n_layers * 7, "packed model: layer count");
  for (std::uint64_t i = 0; i < n; ++i) {
    pm.linears_.push_back(QuantizedLinear::deserialize(r));
  }
  return pm;
}

}  // namespace aptq
