#include "quant/packed_model.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace aptq {

namespace {

constexpr std::uint32_t kPackedMagic = 0x41505150u;  // "APQP"
// v1: f32 scale + i64 zero-point per group, no clip-search flag.
// v2: i32 zero-points and the mse_clip_search flag in QuantizedLinear
//     records; row-major packed codes.
// v3: blocked QuantizedLinear records — per-group byte-aligned code blocks
//     (split-nibble order, stride bytes_per_group) the dequant-dot kernels
//     read directly. v2 checkpoints still load: the codes are repacked on
//     read, value-identical (see QuantizedLinear::deserialize_v2).
constexpr std::uint32_t kPackedVersionV2 = 2u;
constexpr std::uint32_t kPackedVersion = 3u;

void write_matrix(BinaryWriter& w, const Matrix& m) {
  w.write_u64(m.rows());
  w.write_u64(m.cols());
  std::vector<float> flat(m.flat().begin(), m.flat().end());
  w.write_f32_vector(flat);
}

Matrix read_matrix(BinaryReader& r) {
  const std::size_t rows = r.read_u64();
  const std::size_t cols = r.read_u64();
  const std::vector<float> flat = r.read_f32_vector();
  // Division form so a stomped dimension pair cannot overflow rows * cols
  // into coincidentally matching the payload length.
  APTQ_CHECK((rows == 0 && flat.empty()) ||
                 (rows > 0 && cols == flat.size() / rows &&
                  rows * cols == flat.size()),
             "packed model: matrix corrupt");
  Matrix m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

// Weight access over packed linears for the shared decode engine (see the
// adapter contract in model/decode.hpp). Multi-row projections go through
// the fused dequantize-GEMM; single-row ones hit the GEMV kernel inside
// matmul_transposed.
class PackedDecodeAdapter {
 public:
  explicit PackedDecodeAdapter(const PackedModel& model) : model_(model) {}

  const ModelConfig& config() const { return model_.config(); }
  std::span<const float> embedding(std::size_t token) const {
    return model_.tok_embed().row(token);
  }
  std::span<const float> attn_norm(std::size_t layer) const {
    return model_.attn_norm(layer);
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return model_.ffn_norm(layer);
  }
  std::span<const float> final_norm() const { return model_.final_norm(); }

  Matrix project(std::size_t layer, LinearKind kind, const Matrix& x) const {
    const std::size_t base = layer * 7;
    std::size_t idx = 0;
    switch (kind) {
      case LinearKind::q_proj: idx = 0; break;
      case LinearKind::k_proj: idx = 1; break;
      case LinearKind::v_proj: idx = 2; break;
      case LinearKind::o_proj: idx = 3; break;
      case LinearKind::gate_proj: idx = 4; break;
      case LinearKind::up_proj: idx = 5; break;
      case LinearKind::down_proj: idx = 6; break;
      case LinearKind::lm_head:
        APTQ_FAIL("PackedDecodeAdapter: unexpected projection kind");
    }
    return model_.linears()[base + idx].matmul_transposed(x);
  }

  Matrix head(const Matrix& x) const { return matmul(x, model_.lm_head()); }

  // Batched projections for continuous-batching decode: row i of the result
  // is bitwise identical to project()/head() on row i alone (see
  // QuantizedLinear::matvec_transposed_batch and kern::gemv_batch).
  Matrix project_batch(std::size_t layer, LinearKind kind,
                       const Matrix& x) const {
    const std::size_t base = layer * 7;
    std::size_t idx = 0;
    switch (kind) {
      case LinearKind::q_proj: idx = 0; break;
      case LinearKind::k_proj: idx = 1; break;
      case LinearKind::v_proj: idx = 2; break;
      case LinearKind::o_proj: idx = 3; break;
      case LinearKind::gate_proj: idx = 4; break;
      case LinearKind::up_proj: idx = 5; break;
      case LinearKind::down_proj: idx = 6; break;
      case LinearKind::lm_head:
        APTQ_FAIL("PackedDecodeAdapter: unexpected projection kind");
    }
    const QuantizedLinear& lin = model_.linears()[base + idx];
    Matrix out(x.rows(), lin.rows());
    lin.matvec_transposed_batch(x, out);
    return out;
  }

  Matrix head_batch(const Matrix& x) const {
    const Matrix& w = model_.lm_head();
    APTQ_CHECK(x.cols() == w.rows(), "head_batch: shape mismatch");
    Matrix out(x.rows(), w.cols());
    kern::gemv_batch(x.data(), w.data(), x.rows(), x.cols(), w.cols(),
                     out.data());
    return out;
  }

 private:
  const PackedModel& model_;
};

}  // namespace

PackedModel PackedModel::pack_impl(
    const Model& model, const std::map<std::string, QuantSpec>& specs) {
  obs::TraceSpan span("pack.model", "quant");
  PackedModel pm;
  pm.config_ = model.config;
  pm.tok_embed_ = model.tok_embed;
  pm.final_norm_ = model.final_norm;
  pm.lm_head_ = model.lm_head;
  for (const auto& block : model.blocks) {
    pm.attn_norms_.push_back(block.attn_norm);
    pm.ffn_norms_.push_back(block.ffn_norm);
  }
  for (const auto& ref : collect_linears(model)) {
    const auto it = specs.find(ref.name);
    APTQ_CHECK(it != specs.end(),
               "PackedModel: no spec for layer " + ref.name);
    // Pack in the out-major orientation (groups along the input dim).
    pm.linears_.emplace_back(ref.weight->transposed(), it->second);
    if (obs::telemetry_enabled()) {
      static auto& bytes = obs::counter("pack.bytes");
      bytes.add(pm.linears_.back().storage_bytes());
    }
  }
  return pm;
}

PackedModel PackedModel::pack(const QuantizedModel& qm,
                              std::size_t group_size) {
  std::map<std::string, QuantSpec> specs;
  for (const auto& layer : qm.layers) {
    const double rounded = std::round(layer.bits);
    APTQ_CHECK(layer.bits == rounded && rounded >= 1 && rounded <= 8,
               "PackedModel: layer " + layer.name +
                   " has non-packable bit width");
    QuantSpec spec;
    spec.bits = static_cast<int>(rounded);
    spec.group_size = group_size;
    specs[layer.name] = spec;
  }
  return pack_impl(qm.model, specs);
}

PackedModel PackedModel::pack_uniform(const Model& model,
                                      const QuantSpec& spec) {
  std::map<std::string, QuantSpec> specs;
  for (const auto& ref : collect_linears(model)) {
    specs[ref.name] = spec;
  }
  return pack_impl(model, specs);
}

Model PackedModel::unpack() const {
  Model m;
  m.config = config_;
  m.tok_embed = tok_embed_;
  m.final_norm = final_norm_;
  m.lm_head = lm_head_;
  m.blocks.resize(config_.n_layers);
  for (std::size_t b = 0; b < config_.n_layers; ++b) {
    auto& blk = m.blocks[b];
    blk.attn_norm = attn_norms_[b];
    blk.ffn_norm = ffn_norms_[b];
    const std::size_t base = b * 7;
    blk.wq = linears_[base + 0].dequantize().transposed();
    blk.wk = linears_[base + 1].dequantize().transposed();
    blk.wv = linears_[base + 2].dequantize().transposed();
    blk.wo = linears_[base + 3].dequantize().transposed();
    blk.w_gate = linears_[base + 4].dequantize().transposed();
    blk.w_up = linears_[base + 5].dequantize().transposed();
    blk.w_down = linears_[base + 6].dequantize().transposed();
  }
  return m;
}

Matrix PackedModel::forward(std::span<const TokenId> tokens) const {
  APTQ_CHECK(linears_.size() == config_.n_layers * 7,
             "PackedModel: not initialized");
  APTQ_CHECK(!tokens.empty(), "PackedModel::forward: empty input");
  // One prefill over a throwaway state reproduces the full causal pass.
  DecodeState state(config_, tokens.size());
  return decode_prefill(*this, tokens, state);
}

std::size_t PackedModel::linear_storage_bytes() const {
  std::size_t total = 0;
  for (const auto& q : linears_) {
    total += q.storage_bytes();
  }
  return total;
}

std::size_t PackedModel::total_storage_bytes() const {
  std::size_t total = linear_storage_bytes();
  total += tok_embed_.size() * sizeof(float);
  total += lm_head_.size() * sizeof(float);
  total += final_norm_.size() * sizeof(float);
  for (const auto& v : attn_norms_) {
    total += v.size() * sizeof(float);
  }
  for (const auto& v : ffn_norms_) {
    total += v.size() * sizeof(float);
  }
  return total;
}

PackedModel PackedModel::assemble(const ModelConfig& config, Matrix tok_embed,
                                  std::vector<std::vector<float>> attn_norms,
                                  std::vector<std::vector<float>> ffn_norms,
                                  std::vector<float> final_norm,
                                  Matrix lm_head,
                                  std::vector<QuantizedLinear> linears) {
  config.validate();
  APTQ_CHECK(tok_embed.rows() == config.vocab_size &&
                 tok_embed.cols() == config.dim,
             "PackedModel::assemble: tok_embed shape mismatch");
  APTQ_CHECK(attn_norms.size() == config.n_layers &&
                 ffn_norms.size() == config.n_layers,
             "PackedModel::assemble: one norm pair per layer required");
  APTQ_CHECK(final_norm.size() == config.dim,
             "PackedModel::assemble: final_norm size mismatch");
  APTQ_CHECK(lm_head.rows() == config.dim &&
                 lm_head.cols() == config.vocab_size,
             "PackedModel::assemble: lm_head shape mismatch");
  APTQ_CHECK(linears.size() == config.n_layers * 7,
             "PackedModel::assemble: expected 7 linears per layer");
  PackedModel pm;
  pm.config_ = config;
  pm.tok_embed_ = std::move(tok_embed);
  pm.attn_norms_ = std::move(attn_norms);
  pm.ffn_norms_ = std::move(ffn_norms);
  pm.final_norm_ = std::move(final_norm);
  pm.lm_head_ = std::move(lm_head);
  pm.linears_ = std::move(linears);
  return pm;
}

void PackedModel::save(const std::string& path) const {
  BinaryWriter w(path);
  w.write_u32(kPackedMagic);
  w.write_u32(kPackedVersion);
  w.write_u64(config_.vocab_size);
  w.write_u64(config_.dim);
  w.write_u64(config_.n_layers);
  w.write_u64(config_.n_heads);
  w.write_u64(config_.ffn_dim);
  w.write_u64(config_.n_kv_heads);
  w.write_f32(config_.rope_theta);
  w.write_f32(config_.norm_eps);
  write_matrix(w, tok_embed_);
  for (std::size_t b = 0; b < config_.n_layers; ++b) {
    w.write_f32_vector(attn_norms_[b]);
    w.write_f32_vector(ffn_norms_[b]);
  }
  w.write_f32_vector(final_norm_);
  write_matrix(w, lm_head_);
  w.write_u64(linears_.size());
  for (const auto& q : linears_) {
    q.serialize(w);
  }
}

PackedModel PackedModel::load(const std::string& path) {
  BinaryReader r(path);
  APTQ_CHECK(r.read_u32() == kPackedMagic, "packed model: bad magic " + path);
  const std::uint32_t version = r.read_u32();
  APTQ_CHECK(version == kPackedVersion || version == kPackedVersionV2,
             "packed model: unsupported version " + std::to_string(version) +
                 " in " + path);
  PackedModel pm;
  pm.config_.vocab_size = r.read_u64();
  pm.config_.dim = r.read_u64();
  pm.config_.n_layers = r.read_u64();
  pm.config_.n_heads = r.read_u64();
  pm.config_.ffn_dim = r.read_u64();
  pm.config_.n_kv_heads = r.read_u64();
  pm.config_.rope_theta = r.read_f32();
  pm.config_.norm_eps = r.read_f32();
  pm.config_.validate();
  pm.tok_embed_ = read_matrix(r);
  for (std::size_t b = 0; b < pm.config_.n_layers; ++b) {
    pm.attn_norms_.push_back(r.read_f32_vector());
    pm.ffn_norms_.push_back(r.read_f32_vector());
  }
  pm.final_norm_ = r.read_f32_vector();
  pm.lm_head_ = read_matrix(r);
  const std::uint64_t n = r.read_u64();
  APTQ_CHECK(n == pm.config_.n_layers * 7, "packed model: layer count");
  for (std::uint64_t i = 0; i < n; ++i) {
    pm.linears_.push_back(version == kPackedVersionV2
                              ? QuantizedLinear::deserialize_v2(r)
                              : QuantizedLinear::deserialize(r));
  }
  return pm;
}

Matrix decode_prefill(const PackedModel& model, std::span<const TokenId> tokens,
                      DecodeState& state) {
  APTQ_CHECK(model.linears().size() == model.config().n_layers * 7,
             "decode_prefill: packed model not initialized");
  return detail::decode_prefill_impl(PackedDecodeAdapter(model), tokens, state,
                                     ForwardOptions{});
}

std::vector<float> decode_step(const PackedModel& model, TokenId token,
                               DecodeState& state) {
  APTQ_CHECK(model.linears().size() == model.config().n_layers * 7,
             "decode_step: packed model not initialized");
  return detail::decode_step_impl(PackedDecodeAdapter(model), token, state,
                                  ForwardOptions{});
}

Matrix decode_step_batch(const PackedModel& model,
                         std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states,
                         const ForwardOptions& options) {
  APTQ_CHECK(model.linears().size() == model.config().n_layers * 7,
             "decode_step_batch: packed model not initialized");
  return detail::decode_step_batch_impl(PackedDecodeAdapter(model), tokens,
                                        states, options);
}

Matrix decode_verify(const PackedModel& model, std::span<const TokenId> tokens,
                     DecodeState& state, const ForwardOptions& options) {
  APTQ_CHECK(model.linears().size() == model.config().n_layers * 7,
             "decode_verify: packed model not initialized");
  return detail::decode_verify_impl(PackedDecodeAdapter(model), tokens, state,
                                    options);
}

TokenSeq sample_from_packed(const PackedModel& model, std::size_t length,
                            Rng& rng, const SampleConfig& config,
                            const TokenSeq& prompt) {
  DecodeState state(model.config(), length);
  return sample_with_engine(
      model.config().vocab_size, length, rng, config, prompt,
      [&](std::span<const TokenId> tokens) {
        const Matrix logits = decode_prefill(model, tokens, state);
        const auto last = logits.row(logits.rows() - 1);
        return std::vector<float>(last.begin(), last.end());
      },
      [&](TokenId token) { return decode_step(model, token, state); });
}

}  // namespace aptq
