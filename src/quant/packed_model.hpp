// PackedModel: the deployable artifact — every linear layer stored
// bit-packed (per-layer bit widths, as produced by the mixed-precision
// pipeline), embeddings/norms in f32, with save/load and a forward path
// that runs through the fused dequantize-matmul kernel.
//
// Packing re-fits each group's grid from the (already grid-snapped) solver
// output, which can re-snap a value by at most half a quantization step;
// tests bound the resulting logit drift and perplexity delta.
//
// Incremental decoding: PackedModel plugs into the shared KV-cache engine
// (model/decode.hpp) via the decode_prefill / decode_step overloads below;
// single-token steps hit the packed GEMV kernel
// (QuantizedLinear::matvec_transposed). See docs/DECODING.md.
#pragma once

#include <map>
#include <string>

#include "data/vocab.hpp"
#include "model/decode.hpp"
#include "model/model.hpp"
#include "model/sampler.hpp"
#include "quant/qformat.hpp"
#include "quant/qmodel.hpp"
#include "util/rng.hpp"

namespace aptq {

/// A fully packed model.
class PackedModel {
 public:
  PackedModel() = default;

  /// Pack a quantized model using the per-layer bit widths recorded in
  /// `qm.layers` (integer-bit layers only — PB-LLM/OWQ mixed-FP layers
  /// cannot be bit-packed; pack() throws for them).
  static PackedModel pack(const QuantizedModel& qm, std::size_t group_size);

  /// Pack a plain model uniformly at `spec` (RTN semantics).
  static PackedModel pack_uniform(const Model& model, const QuantSpec& spec);

  /// Assemble a model from already-built parts — the reassembly path for
  /// tensor-parallel shard files (net/shard.hpp), where the linears were
  /// carved with QuantizedLinear::row_slice and stacked back with
  /// row_concat. Validates tensor counts/shapes against `config`; the
  /// result saves bit-identically to the model the parts came from.
  static PackedModel assemble(const ModelConfig& config, Matrix tok_embed,
                              std::vector<std::vector<float>> attn_norms,
                              std::vector<std::vector<float>> ffn_norms,
                              std::vector<float> final_norm, Matrix lm_head,
                              std::vector<QuantizedLinear> linears);

  /// Reconstruct an evaluable dense model (dequantize every linear).
  Model unpack() const;

  /// Forward pass running directly on packed weights (dequantizing row
  /// blocks through the fused kernel); returns (T × V) logits.
  Matrix forward(std::span<const TokenId> tokens) const;

  const ModelConfig& config() const { return config_; }

  /// Packed bytes of all quantized linears (excludes f32 embeddings/norms).
  std::size_t linear_storage_bytes() const;

  /// Total artifact size in bytes (linears + f32 tensors).
  std::size_t total_storage_bytes() const;

  /// Per-layer packed tensors, in collect_linears order.
  const std::vector<QuantizedLinear>& linears() const { return linears_; }

  // f32 tensors, exposed for the decode engine adapter.
  const Matrix& tok_embed() const { return tok_embed_; }
  const Matrix& lm_head() const { return lm_head_; }
  std::span<const float> attn_norm(std::size_t layer) const {
    return attn_norms_[layer];
  }
  std::span<const float> ffn_norm(std::size_t layer) const {
    return ffn_norms_[layer];
  }
  std::span<const float> final_norm() const { return final_norm_; }

  /// Deploy-format round-trip.
  void save(const std::string& path) const;
  static PackedModel load(const std::string& path);

 private:
  static PackedModel pack_impl(const Model& model,
                               const std::map<std::string, QuantSpec>& specs);

  ModelConfig config_;
  Matrix tok_embed_;
  std::vector<std::vector<float>> attn_norms_;
  std::vector<std::vector<float>> ffn_norms_;
  std::vector<float> final_norm_;
  Matrix lm_head_;
  // Seven per block, in collect_linears order (q,k,v,o,gate,up,down).
  std::vector<QuantizedLinear> linears_;
};

/// Batched prefill over packed weights: appends `tokens` to the context
/// and returns their (T × V) logits.
Matrix decode_prefill(const PackedModel& model, std::span<const TokenId> tokens,
                      DecodeState& state);

/// One incremental step over packed weights via the GEMV kernel: appends
/// `token` and returns its next-token logits.
std::vector<float> decode_step(const PackedModel& model, TokenId token,
                               DecodeState& state);

/// One incremental step for a batch of independent requests over packed
/// weights: row i of the returned (batch × V) logits is bitwise identical
/// to decode_step(model, tokens[i], *states[i]). Projections ride
/// kern::qgemv_batch, which unpacks each weight row's codes once per batch.
Matrix decode_step_batch(const PackedModel& model,
                         std::span<const TokenId> tokens,
                         std::span<DecodeState* const> states,
                         const ForwardOptions& options = {});

/// Speculative verification over packed weights: row j of the returned
/// (m × V) logits is bitwise identical to the j-th of m sequential
/// decode_step(model, tokens[j], state) calls (see the dense
/// decode_verify contract in model/decode.hpp).
Matrix decode_verify(const PackedModel& model, std::span<const TokenId> tokens,
                     DecodeState& state, const ForwardOptions& options = {});

/// Sample `length` tokens autoregressively from a packed model (same loop
/// and RNG consumption as sample_from_model, running on packed weights).
TokenSeq sample_from_packed(const PackedModel& model, std::size_t length,
                            Rng& rng, const SampleConfig& config = {},
                            const TokenSeq& prompt = {});

}  // namespace aptq
