// PackedModel: the deployable artifact — every linear layer stored
// bit-packed (per-layer bit widths, as produced by the mixed-precision
// pipeline), embeddings/norms in f32, with save/load and a forward path
// that runs through the fused dequantize-matmul kernel.
//
// Packing re-fits each group's grid from the (already grid-snapped) solver
// output, which can re-snap a value by at most half a quantization step;
// tests bound the resulting logit drift and perplexity delta.
#pragma once

#include <map>
#include <string>

#include "data/vocab.hpp"
#include "model/model.hpp"
#include "quant/qformat.hpp"
#include "quant/qmodel.hpp"

namespace aptq {

/// A fully packed model.
class PackedModel {
 public:
  PackedModel() = default;

  /// Pack a quantized model using the per-layer bit widths recorded in
  /// `qm.layers` (integer-bit layers only — PB-LLM/OWQ mixed-FP layers
  /// cannot be bit-packed; pack() throws for them).
  static PackedModel pack(const QuantizedModel& qm, std::size_t group_size);

  /// Pack a plain model uniformly at `spec` (RTN semantics).
  static PackedModel pack_uniform(const Model& model, const QuantSpec& spec);

  /// Reconstruct an evaluable dense model (dequantize every linear).
  Model unpack() const;

  /// Forward pass running directly on packed weights (dequantizing row
  /// blocks through the fused kernel); returns (T × V) logits.
  Matrix forward(std::span<const TokenId> tokens) const;

  const ModelConfig& config() const { return config_; }

  /// Packed bytes of all quantized linears (excludes f32 embeddings/norms).
  std::size_t linear_storage_bytes() const;

  /// Total artifact size in bytes (linears + f32 tensors).
  std::size_t total_storage_bytes() const;

  /// Per-layer packed tensors, in collect_linears order.
  const std::vector<QuantizedLinear>& linears() const { return linears_; }

  /// Deploy-format round-trip.
  void save(const std::string& path) const;
  static PackedModel load(const std::string& path);

 private:
  static PackedModel pack_impl(const Model& model,
                               const std::map<std::string, QuantSpec>& specs);

  ModelConfig config_;
  Matrix tok_embed_;
  std::vector<std::vector<float>> attn_norms_;
  std::vector<std::vector<float>> ffn_norms_;
  std::vector<float> final_norm_;
  Matrix lm_head_;
  // Seven per block, in collect_linears order (q,k,v,o,gate,up,down).
  std::vector<QuantizedLinear> linears_;
};

}  // namespace aptq
