#include "quant/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/backward.hpp"
#include "model/forward.hpp"
#include "model/sampler.hpp"
#include "train/adamw.hpp"
#include "train/loss.hpp"
#include "util/check.hpp"

namespace aptq {

PbLlmResult pbllm_quantize(const Matrix& w, const Matrix& h,
                           const PbLlmConfig& config) {
  APTQ_CHECK(config.salient_fraction >= 0.0 && config.salient_fraction < 1.0,
             "pbllm_quantize: salient fraction out of range");
  APTQ_CHECK(h.rows() == w.cols() && h.cols() == w.cols(),
             "pbllm_quantize: Hessian shape mismatch");
  const std::size_t n = w.size();
  const std::size_t d_in = w.cols();

  // Saliency = diag(H)_j · w² (PB-LLM's Hessian-magnitude criterion).
  std::vector<float> saliency(n);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < d_in; ++c) {
      const float wv = w(r, c);
      saliency[r * d_in + c] = h(c, c) * wv * wv;
    }
  }
  const std::size_t keep =
      static_cast<std::size_t>(config.salient_fraction * n);
  std::vector<char> is_salient(n, 0);
  if (keep > 0) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     order.end(),
                     [&saliency](std::size_t a, std::size_t b) {
                       return saliency[a] > saliency[b];
                     });
    for (std::size_t i = 0; i < keep; ++i) {
      is_salient[order[i]] = 1;
    }
  }

  PbLlmResult result;
  result.weight = w;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    // Row-wise optimal binary magnitude over the non-salient set.
    double abs_sum = 0.0;
    std::size_t count = 0;
    for (std::size_t c = 0; c < d_in; ++c) {
      if (!is_salient[r * d_in + c]) {
        abs_sum += std::fabs(w(r, c));
        ++count;
      }
    }
    const float alpha =
        count > 0 ? static_cast<float>(abs_sum / count) : 0.0f;
    for (std::size_t c = 0; c < d_in; ++c) {
      if (!is_salient[r * d_in + c]) {
        result.weight(r, c) = w(r, c) >= 0.0f ? alpha : -alpha;
      }
    }
  }
  const double rho = static_cast<double>(keep) / static_cast<double>(n);
  result.avg_bits = 16.0 * rho + 1.0 * (1.0 - rho);
  return result;
}

OwqResult owq_quantize(const Matrix& w, const Matrix& h,
                       const OwqConfig& config) {
  APTQ_CHECK(config.fp_column_fraction >= 0.0 &&
                 config.fp_column_fraction < 1.0,
             "owq_quantize: fp fraction out of range");
  const std::size_t d_in = w.cols();
  // Weak-column score: diag(H)_j · ||w_:,j||² (activation outliers hit the
  // columns where the quantization error is amplified most).
  std::vector<double> score(d_in, 0.0);
  for (std::size_t c = 0; c < d_in; ++c) {
    double col_norm = 0.0;
    for (std::size_t r = 0; r < w.rows(); ++r) {
      col_norm += static_cast<double>(w(r, c)) * w(r, c);
    }
    score[c] = static_cast<double>(h(c, c)) * col_norm;
  }
  std::size_t n_fp = static_cast<std::size_t>(
      std::ceil(config.fp_column_fraction * static_cast<double>(d_in)));
  n_fp = std::min(n_fp, d_in > 0 ? d_in - 1 : 0);

  OwqResult result;
  if (n_fp > 0) {
    std::vector<std::size_t> order(d_in);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(n_fp),
                      order.end(), [&score](std::size_t a, std::size_t b) {
                        return score[a] > score[b];
                      });
    result.fp_columns.assign(order.begin(),
                             order.begin() + static_cast<std::ptrdiff_t>(n_fp));
    std::sort(result.fp_columns.begin(), result.fp_columns.end());
  }

  GptqConfig gc;
  gc.spec = config.spec;
  gc.block_size = config.block_size;
  gc.damp = config.damp;
  gc.fp_columns = result.fp_columns;
  result.weight = gptq_quantize(w, h, gc).weight;
  const double fp_frac =
      static_cast<double>(n_fp) / static_cast<double>(d_in);
  result.avg_bits =
      16.0 * fp_frac + static_cast<double>(config.spec.bits) * (1.0 - fp_frac);
  return result;
}

ActivationMaxima collect_activation_maxima(const Model& model,
                                           std::span<const TokenSeq> segments) {
  APTQ_CHECK(!segments.empty(), "collect_activation_maxima: no segments");
  const std::size_t d = model.config.dim;
  ActivationMaxima maxima;
  maxima.attn_input.assign(model.config.n_layers,
                           std::vector<float>(d, 0.0f));
  maxima.ffn_input.assign(model.config.n_layers,
                          std::vector<float>(d, 0.0f));
  ForwardCache cache;
  for (const auto& segment : segments) {
    model_forward(model, segment, cache);
    for (std::size_t b = 0; b < model.config.n_layers; ++b) {
      const auto track = [d](const Matrix& x, std::vector<float>& out) {
        for (std::size_t t = 0; t < x.rows(); ++t) {
          const float* row = x.data() + t * d;
          for (std::size_t c = 0; c < d; ++c) {
            out[c] = std::max(out[c], std::fabs(row[c]));
          }
        }
      };
      track(cache.blocks[b].normed1, maxima.attn_input[b]);
      track(cache.blocks[b].normed2, maxima.ffn_input[b]);
    }
  }
  return maxima;
}

namespace {

// Per-channel migration scales s_j = max|X_j|^α / max|W_j|^{1-α}, guarded
// against degenerate channels.
std::vector<float> smoothing_scales(std::span<const float> act_max,
                                    std::span<const float> weight_max,
                                    double alpha) {
  std::vector<float> s(act_max.size(), 1.0f);
  for (std::size_t j = 0; j < act_max.size(); ++j) {
    if (act_max[j] <= 0.0f || weight_max[j] <= 0.0f) {
      continue;
    }
    const double v = std::pow(act_max[j], alpha) /
                     std::pow(weight_max[j], 1.0 - alpha);
    s[j] = static_cast<float>(std::clamp(v, 1e-3, 1e3));
  }
  return s;
}

// max_j over the given input-major matrices of |W(j, :)| per input channel.
std::vector<float> weight_channel_maxima(
    std::initializer_list<const Matrix*> weights, std::size_t d_in) {
  std::vector<float> m(d_in, 0.0f);
  for (const Matrix* w : weights) {
    APTQ_CHECK(w->rows() == d_in, "weight_channel_maxima: shape mismatch");
    for (std::size_t j = 0; j < d_in; ++j) {
      for (const float v : w->row(j)) {
        m[j] = std::max(m[j], std::fabs(v));
      }
    }
  }
  return m;
}

}  // namespace

void smoothquant_apply(Model& model, const ActivationMaxima& maxima,
                       const SmoothQuantConfig& config) {
  APTQ_CHECK(maxima.attn_input.size() == model.config.n_layers &&
                 maxima.ffn_input.size() == model.config.n_layers,
             "smoothquant_apply: maxima/model mismatch");
  APTQ_CHECK(config.alpha > 0.0 && config.alpha < 1.0,
             "smoothquant_apply: alpha out of range");
  const std::size_t d = model.config.dim;
  for (std::size_t b = 0; b < model.config.n_layers; ++b) {
    auto& blk = model.blocks[b];
    // Attention input group: fold 1/s into attn_norm, s into q/k/v rows.
    const auto w_max_attn =
        weight_channel_maxima({&blk.wq, &blk.wk, &blk.wv}, d);
    const auto s_attn =
        smoothing_scales(maxima.attn_input[b], w_max_attn, config.alpha);
    for (std::size_t j = 0; j < d; ++j) {
      blk.attn_norm[j] /= s_attn[j];
      for (Matrix* w : {&blk.wq, &blk.wk, &blk.wv}) {
        for (float& v : w->row(j)) {
          v *= s_attn[j];
        }
      }
    }
    // FFN input group: fold into ffn_norm and gate/up rows.
    const auto w_max_ffn =
        weight_channel_maxima({&blk.w_gate, &blk.w_up}, d);
    const auto s_ffn =
        smoothing_scales(maxima.ffn_input[b], w_max_ffn, config.alpha);
    for (std::size_t j = 0; j < d; ++j) {
      blk.ffn_norm[j] /= s_ffn[j];
      for (Matrix* w : {&blk.w_gate, &blk.w_up}) {
        for (float& v : w->row(j)) {
          v *= s_ffn[j];
        }
      }
    }
  }
  QuantSpec spec;
  spec.bits = config.weight_bits;
  spec.group_size = config.group_size;
  quantize_model_weights_rtn(model, spec);
}

namespace {

// Activation-weighted quantization error of an input-major weight group
// under per-input-channel scales s: Σ_j actmax_j² · ||Ŵ_j − W_j||², where
// Ŵ = diag(1/s)·RTN(diag(s)·W).
double awq_group_error(std::span<const Matrix* const> weights,
                       std::span<const float> scales,
                       std::span<const float> act_max,
                       const QuantSpec& spec) {
  double err = 0.0;
  for (const Matrix* w : weights) {
    Matrix scaled = *w;  // input-major: row j is input channel j
    for (std::size_t j = 0; j < scaled.rows(); ++j) {
      for (float& v : scaled.row(j)) {
        v *= scales[j];
      }
    }
    Matrix q = scaled.transposed();  // out-major for grouping
    quantize_dequantize_matrix(q, spec);
    const Matrix back = q.transposed();
    for (std::size_t j = 0; j < scaled.rows(); ++j) {
      const double weight = static_cast<double>(act_max[j]) * act_max[j];
      for (std::size_t c = 0; c < scaled.cols(); ++c) {
        const double d =
            back(j, c) / scales[j] - (*w)(j, c);
        err += weight * d * d;
      }
    }
  }
  return err;
}

// Per-channel scales s_j = (max|X_j|)^α, normalized to geometric mean 1 and
// clamped to a sane range.
std::vector<float> awq_scales(std::span<const float> act_max, double alpha) {
  std::vector<float> s(act_max.size(), 1.0f);
  double log_sum = 0.0;
  std::size_t live = 0;
  for (std::size_t j = 0; j < act_max.size(); ++j) {
    if (act_max[j] > 0.0f) {
      s[j] = static_cast<float>(std::pow(act_max[j], alpha));
      log_sum += std::log(s[j]);
      ++live;
    }
  }
  if (live > 0) {
    const float norm = static_cast<float>(std::exp(log_sum / live));
    for (auto& v : s) {
      v = std::clamp(v / norm, 1e-3f, 1e3f);
    }
  }
  return s;
}

}  // namespace

std::vector<double> awq_apply(Model& model, const ActivationMaxima& maxima,
                              const AwqConfig& config) {
  APTQ_CHECK(!config.alpha_grid.empty(), "awq_apply: empty alpha grid");
  APTQ_CHECK(maxima.attn_input.size() == model.config.n_layers &&
                 maxima.ffn_input.size() == model.config.n_layers,
             "awq_apply: maxima/model mismatch");
  std::vector<double> chosen;
  for (std::size_t b = 0; b < model.config.n_layers; ++b) {
    auto& blk = model.blocks[b];
    const auto search_and_fold =
        [&](std::initializer_list<Matrix*> weights,
            std::vector<float>& norm_gain, std::span<const float> act_max) {
          std::vector<const Matrix*> cw(weights.begin(), weights.end());
          double best_err = 1e300;
          double best_alpha = 0.0;
          std::vector<float> best_scales;
          for (const double alpha : config.alpha_grid) {
            const auto s = awq_scales(act_max, alpha);
            const double err = awq_group_error(cw, s, act_max, config.spec);
            if (err < best_err) {
              best_err = err;
              best_alpha = alpha;
              best_scales = s;
            }
          }
          for (std::size_t j = 0; j < best_scales.size(); ++j) {
            norm_gain[j] /= best_scales[j];
            for (Matrix* w : weights) {
              for (float& v : w->row(j)) {
                v *= best_scales[j];
              }
            }
          }
          chosen.push_back(best_alpha);
        };
    search_and_fold({&blk.wq, &blk.wk, &blk.wv}, blk.attn_norm,
                    maxima.attn_input[b]);
    search_and_fold({&blk.w_gate, &blk.w_up}, blk.ffn_norm,
                    maxima.ffn_input[b]);
  }
  quantize_model_weights_rtn(model, config.spec);
  return chosen;
}

void quantize_model_weights_rtn(Model& model, const QuantSpec& spec,
                                bool include_lm_head) {
  for (const auto& ref : collect_linears(model, include_lm_head)) {
    // Quantize in the out-major orientation so groups run along the input
    // dimension, matching the GPTQ/APTQ convention.
    Matrix wt = ref.weight->transposed();
    quantize_dequantize_matrix(wt, spec);
    *ref.weight = wt.transposed();
  }
}

Model qat_finetune(const Model& teacher, const QatConfig& config) {
  APTQ_CHECK(config.steps >= 1 && config.batch_size >= 1,
             "qat_finetune: bad configuration");
  APTQ_CHECK(config.seq_len >= 2 && config.pool_sequences >= 1,
             "qat_finetune: bad sequence configuration");
  Rng rng(config.seed);

  // Data-free: the training pool is sampled from the FP teacher itself.
  SampleConfig sample_cfg;
  sample_cfg.temperature = config.sample_temperature;
  std::vector<TokenSeq> pool;
  pool.reserve(config.pool_sequences);
  for (std::size_t i = 0; i < config.pool_sequences; ++i) {
    pool.push_back(
        sample_from_model(teacher, config.seq_len, rng, sample_cfg));
  }

  Model latent = teacher;
  AdamWConfig opt_cfg;
  opt_cfg.lr = config.lr;
  opt_cfg.weight_decay = 0.0f;
  AdamW optimizer(opt_cfg);
  Gradients grads = Gradients::zeros_like(latent);

  ForwardCache cache;
  for (std::size_t step = 0; step < config.steps; ++step) {
    // Quantized view of the latent weights (STE: forward/backward run on
    // the snapped weights, the update lands on the latent FP weights).
    Model quant_view = latent;
    quantize_model_weights_rtn(quant_view, config.spec);

    grads.set_zero();
    for (std::size_t b = 0; b < config.batch_size; ++b) {
      const TokenSeq& seq = pool[rng.index(pool.size())];
      const Matrix student_logits = model_forward(quant_view, seq, cache);
      const Matrix teacher_logits = model_forward(teacher, seq);
      // Soft-label distillation: dL/dlogits = softmax(student) − softmax(teacher),
      // averaged over positions.
      Matrix grad_logits(student_logits.rows(), student_logits.cols());
      const float inv =
          1.0f / static_cast<float>(student_logits.rows() * config.batch_size);
      std::vector<float> ps(student_logits.cols());
      std::vector<float> pt(student_logits.cols());
      for (std::size_t t = 0; t < student_logits.rows(); ++t) {
        const auto softmax_row = [](std::span<const float> in,
                                    std::vector<float>& out) {
          float mx = in[0];
          for (const float x : in) {
            mx = std::max(mx, x);
          }
          double sum = 0.0;
          for (std::size_t i = 0; i < in.size(); ++i) {
            out[i] = std::exp(in[i] - mx);
            sum += out[i];
          }
          for (auto& x : out) {
            x = static_cast<float>(x / sum);
          }
        };
        softmax_row(student_logits.row(t), ps);
        softmax_row(teacher_logits.row(t), pt);
        for (std::size_t v = 0; v < ps.size(); ++v) {
          grad_logits(t, v) = (ps[v] - pt[v]) * inv;
        }
      }
      model_backward(quant_view, seq, cache, grad_logits, grads);
    }
    clip_grad_norm(grads, 1.0);
    optimizer.step(latent, grads, config.lr);
  }

  quantize_model_weights_rtn(latent, config.spec);
  return latent;
}

}  // namespace aptq
