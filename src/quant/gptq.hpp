// The GPTQ second-order layer-wise quantization solver (Frantar et al.,
// ICLR 2023), which is also APTQ's inner solver — APTQ differs only in the
// Hessian it feeds in (attention-aware γ-weighted instead of plain XXᵀ) and
// in the per-layer bit allocation.
//
// Implements OBQ's fixed-order column scheme with the Cholesky
// reformulation (paper eqs. 2-4 and 16-17, Algorithm 1 lines 4-11):
// per column j, snap to the grid, compute the scaled error
// e = (w_j − q_j)/U_jj, and propagate −e·U_{j,j+1:} into the not-yet-
// quantized columns, with lazy block updates for the tail.
#pragma once

#include "quant/qformat.hpp"
#include "tensor/matrix.hpp"

namespace aptq {

/// Solver configuration.
struct GptqConfig {
  QuantSpec spec;                ///< target grid (bits, group size, format)
  std::size_t block_size = 16;   ///< lazy-update block width B
  double damp = 0.01;            ///< Hessian dampening fraction λ
  bool act_order = false;        ///< process columns by descending diag(H)
  /// Input columns kept in full precision (OWQ's weak columns): the solver
  /// skips quantizing them (zero rounding error), but they still receive
  /// error-compensation updates from earlier columns — as free parameters
  /// they absorb quantization error from the rest of the layer.
  std::vector<std::size_t> fp_columns;
};

/// Solver output.
struct GptqResult {
  Matrix weight;       ///< (d_out × d_in) dequantized quantized weights
  double proxy_loss = 0.0;   ///< Σ_j ||e_j||² — GPTQ's per-layer loss metric
  double recon_error = 0.0;  ///< tr(ΔW·H·ΔWᵀ) — the layer objective (eq. 1/5)
};

/// Quantize `w` (out-major: rows are output channels) against the raw
/// (undamped) Hessian `h` over the input dimension. Dead columns of `h`
/// zero the matching weight columns. Throws on shape mismatch.
GptqResult gptq_quantize(const Matrix& w, const Matrix& h,
                         const GptqConfig& config);

/// Round-to-nearest reference: same grids, no error compensation.
/// (The RTN baseline of Tables 1-2.)
Matrix rtn_quantize(const Matrix& w, const QuantSpec& spec);

/// tr(ΔW·H·ΔWᵀ) for ΔW = w_ref − w_quant: the value of the layer-wise
/// objective both solvers minimize; used by tests and the ablation bench.
double reconstruction_error(const Matrix& w_ref, const Matrix& w_quant,
                            const Matrix& h);

}  // namespace aptq
