// Quantization grids and packed weight storage.
//
// Supports the formats used across the paper's comparison table: affine
// integer grids at 2/3/4/8 bits with per-group scale+zero-point (the GPTQ /
// APTQ / RTN representation, group size configurable — the paper uses 128
// on d=4096 rows; we default to 16 on our scaled-down rows), the FP4 E2M1
// grid (the FPQ / LLM-FP4 baseline), and binary ±α rows (the PB-LLM
// baseline's non-salient part).
//
// quantize_dequantize_* functions implement "fake quantization" (values
// snapped to the grid but kept in f32, which is what perplexity evaluation
// consumes); QuantizedLinear is the genuinely bit-packed storage used to
// account model size and to benchmark dequantization kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/io.hpp"

namespace aptq {

/// Numeric format of a quantization grid.
enum class QFormat {
  int_affine,  ///< round-to-nearest affine integer grid (scale + zero-point)
  fp4_e2m1,    ///< 4-bit float: 1 sign, 2 exponent, 1 mantissa, per-group scale
};

/// A quantization grid specification.
struct QuantSpec {
  int bits = 4;                  ///< 2..8 for int_affine; fixed 4 for fp4
  std::size_t group_size = 16;   ///< weights sharing one scale (0 = whole row)
  QFormat format = QFormat::int_affine;
  bool symmetric = false;        ///< int_affine only: force zero-point to mid
  /// Search a per-group clipping ratio that minimizes the group's MSE
  /// instead of always spanning min..max (AWQ-style clip search). Slightly
  /// slower grid fitting, lower rounding error on heavy-tailed weights.
  bool mse_clip_search = false;

  void validate() const;
};

/// Scale/zero-point of one quantization group.
struct GroupParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Fit affine grid parameters to the min/max of `values`.
GroupParams fit_group_params(std::span<const float> values,
                             const QuantSpec& spec);

/// Quantize one value to its integer code under `params` (int_affine).
std::int32_t quantize_value(float v, const GroupParams& params,
                            const QuantSpec& spec);

/// Dequantize an integer code.
float dequantize_value(std::int32_t code, const GroupParams& params);

/// Snap one value to the grid: dequantize(quantize(v)). For fp4_e2m1 the
/// GroupParams scale maps the group's max |w| onto the largest grid point.
float quantize_dequantize_value(float v, const GroupParams& params,
                                const QuantSpec& spec);

/// The 8 non-negative magnitudes of the E2M1 grid (unscaled).
std::span<const float> fp4_magnitudes();

/// Fake-quantize a full row in place using per-group parameters fit from the
/// row's current values. Returns the parameters per group.
std::vector<GroupParams> quantize_dequantize_row(std::span<float> row,
                                                 const QuantSpec& spec);

/// Fake-quantize every row of a matrix in place (weights stored out-major:
/// rows are output channels, columns input channels — groups run along the
/// input dimension, matching GPTQ's grouping).
void quantize_dequantize_matrix(Matrix& w, const QuantSpec& spec);

/// Number of groups a row of `row_len` splits into under `spec`.
std::size_t group_count(std::size_t row_len, const QuantSpec& spec);

/// Bit-packed storage of one quantized linear layer (out-major codes plus
/// per-row per-group parameters). Proves the storage story and provides the
/// memory accounting used in the size/accuracy trade-off tables.
class QuantizedLinear {
 public:
  QuantizedLinear() = default;

  /// Quantize `w` (out-major) into packed form. The codes are exactly the
  /// ones quantize_dequantize_matrix would produce.
  QuantizedLinear(const Matrix& w, const QuantSpec& spec);

  /// Reconstruct the dequantized weight matrix.
  Matrix dequantize() const;

  /// Fused dequantize-then-multiply: returns x · Wᵀ_dq for x of shape
  /// (n × in_features). Output rows are split across the global thread
  /// pool; single-row inputs route through matvec_transposed.
  Matrix matmul_transposed(const Matrix& x) const;

  /// Fused dequantize GEMV: y[r] = Σ_c x[c] · W_dq(r, c), for x of length
  /// in_features and y of length out_features. Dequantizes group-by-group
  /// into a small stack buffer (never materializing a full row) and
  /// parallelizes over output rows — the per-token decode hot path.
  void matvec_transposed(std::span<const float> x, std::span<float> y) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const QuantSpec& spec() const { return spec_; }

  /// Packed size in bytes (codes + group parameters).
  std::size_t storage_bytes() const;

  /// Effective bits per weight including group-parameter overhead.
  double bits_per_weight() const;

  /// Mean of the per-group grid scales — the final scales the (optional)
  /// MSE clip search settled on, exported as quantization telemetry.
  double mean_group_scale() const;

  /// Binary round-trip (used by the packed-model deploy format).
  void serialize(BinaryWriter& writer) const;
  static QuantizedLinear deserialize(BinaryReader& reader);

  bool operator==(const QuantizedLinear& other) const;

 private:
  std::uint32_t code_at(std::size_t r, std::size_t c) const;

  QuantSpec spec_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t codes_per_byte_ = 1;
  std::vector<std::uint8_t> codes_;       // packed, row-major
  std::vector<GroupParams> group_params_;  // rows × groups
};

}  // namespace aptq
