// Quantization grids and packed weight storage.
//
// Supports the formats used across the paper's comparison table: affine
// integer grids at 2/3/4/8 bits with per-group scale+zero-point (the GPTQ /
// APTQ / RTN representation, group size configurable — the paper uses 128
// on d=4096 rows; we default to 16 on our scaled-down rows), the FP4 E2M1
// grid (the FPQ / LLM-FP4 baseline), and binary ±α rows (the PB-LLM
// baseline's non-salient part).
//
// quantize_dequantize_* functions implement "fake quantization" (values
// snapped to the grid but kept in f32, which is what perplexity evaluation
// consumes); QuantizedLinear is the genuinely bit-packed storage used to
// account model size and to benchmark dequantization kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"
#include "util/io.hpp"

namespace aptq {

/// Numeric format of a quantization grid.
enum class QFormat {
  int_affine,  ///< round-to-nearest affine integer grid (scale + zero-point)
  fp4_e2m1,    ///< 4-bit float: 1 sign, 2 exponent, 1 mantissa, per-group scale
};

/// A quantization grid specification.
struct QuantSpec {
  int bits = 4;                  ///< 2..8 for int_affine; fixed 4 for fp4
  std::size_t group_size = 16;   ///< weights sharing one scale (0 = whole row)
  QFormat format = QFormat::int_affine;
  bool symmetric = false;        ///< int_affine only: force zero-point to mid
  /// Search a per-group clipping ratio that minimizes the group's MSE
  /// instead of always spanning min..max (AWQ-style clip search). Slightly
  /// slower grid fitting, lower rounding error on heavy-tailed weights.
  bool mse_clip_search = false;

  void validate() const;
};

/// Scale/zero-point of one quantization group.
struct GroupParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Fit affine grid parameters to the min/max of `values`.
GroupParams fit_group_params(std::span<const float> values,
                             const QuantSpec& spec);

/// Quantize one value to its integer code under `params` (int_affine).
std::int32_t quantize_value(float v, const GroupParams& params,
                            const QuantSpec& spec);

/// Dequantize an integer code.
float dequantize_value(std::int32_t code, const GroupParams& params);

/// Snap one value to the grid: dequantize(quantize(v)). For fp4_e2m1 the
/// GroupParams scale maps the group's max |w| onto the largest grid point.
float quantize_dequantize_value(float v, const GroupParams& params,
                                const QuantSpec& spec);

/// The 8 non-negative magnitudes of the E2M1 grid (unscaled).
std::span<const float> fp4_magnitudes();

/// Fake-quantize a full row in place using per-group parameters fit from the
/// row's current values. Returns the parameters per group.
std::vector<GroupParams> quantize_dequantize_row(std::span<float> row,
                                                 const QuantSpec& spec);

/// Fake-quantize every row of a matrix in place (weights stored out-major:
/// rows are output channels, columns input channels — groups run along the
/// input dimension, matching GPTQ's grouping).
void quantize_dequantize_matrix(Matrix& w, const QuantSpec& spec);

/// Number of groups a row of `row_len` splits into under `spec`.
std::size_t group_count(std::size_t row_len, const QuantSpec& spec);

/// Block-quantized storage of one linear layer: out-major rows cut into
/// byte-aligned per-group blocks of packed codes, with the group's
/// scale/zero beside them in struct-of-arrays form (the Q40/llama.cpp
/// blocked layout, generalized to runtime group sizes). Provides the memory
/// accounting used in the size/accuracy trade-off tables and the storage
/// the vectorized dequant-dot kernels (kern::qgemv) read.
///
/// Block geometry: every group — including a ragged tail — occupies
/// bytes_per_group = ceil(group_len · packed_bits / 8) bytes, so block g of
/// row r starts at (r · groups + g) · bytes_per_group. 4-bit codes (also
/// 3-bit and fp4, stored in nibbles) use the split-nibble order QBlock
/// documents; 8-bit codes are one byte each; 1/2-bit codes pack
/// little-endian within the block.
class QuantizedLinear {
 public:
  QuantizedLinear() = default;

  /// Quantize `w` (out-major) into packed form. The codes are exactly the
  /// ones quantize_dequantize_matrix would produce. `spec.group_size` is
  /// normalized into [1, cols]: 0 (whole row) and anything larger than the
  /// row length both become one group spanning the row.
  QuantizedLinear(const Matrix& w, const QuantSpec& spec);

  /// Reconstruct the dequantized weight matrix.
  Matrix dequantize() const;

  /// Fused dequantize-then-multiply: returns x · Wᵀ_dq for x of shape
  /// (n × in_features). Affine 4/8-bit codes ride kern::qgemv_multi (each
  /// row unpacked once per batch); single-row inputs route through
  /// matvec_transposed.
  Matrix matmul_transposed(const Matrix& x) const;

  /// Fused dequantize GEMV: y[r] = Σ_c x[c] · W_dq(r, c), for x of length
  /// in_features and y of length out_features — the per-token decode hot
  /// path, served by the vectorized kern::qgemv for affine 4/8-bit codes.
  void matvec_transposed(std::span<const float> x, std::span<float> y) const;

  /// Batched matvec for continuous-batching decode: y(i,:) for input row
  /// x(i,:) is bitwise identical to matvec_transposed(x.row(i), y.row(i)).
  /// The kernel path (kern::qgemv_batch) unpacks each weight row's codes
  /// once and reuses the floats across all batch rows while replaying the
  /// solo qgemv fold per row — unlike matmul_transposed, whose
  /// qgemv_multi fold differs from qgemv. x is (batch × in_features), y
  /// must be preallocated (batch × out_features).
  void matvec_transposed_batch(const Matrix& x, Matrix& y) const;

  /// True when this layer's codes are served by the vectorized blocked
  /// kernels (int_affine stored as nibbles or bytes: bits 3, 4, 8).
  bool has_kernel_path() const;

  /// Borrowed kernel view of the blocked storage (has_kernel_path() only).
  QBlock block_view() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const QuantSpec& spec() const { return spec_; }

  /// Packed size in bytes (codes + group parameters).
  std::size_t storage_bytes() const;

  /// Effective bits per weight including group-parameter overhead.
  double bits_per_weight() const;

  /// Mean of the per-group grid scales — the final scales the (optional)
  /// MSE clip search settled on, exported as quantization telemetry.
  double mean_group_scale() const;

  /// Binary round-trip (used by the packed-model deploy format). Writes the
  /// blocked v3 record; deserialize() reads it back. deserialize_v2() reads
  /// the pre-blocked row-major record (packed file format v2) and repacks
  /// the codes into blocks — same codes, same dequantized values.
  void serialize(BinaryWriter& writer) const;
  static QuantizedLinear deserialize(BinaryReader& reader);
  static QuantizedLinear deserialize_v2(BinaryReader& reader);

  /// Rows [r0, r1) as a standalone layer over the same grid. Blocked codes
  /// are row-major (row r's blocks are contiguous), so the slice is a pure
  /// byte copy: tensor-parallel shards carved this way and stacked back with
  /// row_concat reproduce the original storage bit-for-bit.
  QuantizedLinear row_slice(std::size_t r0, std::size_t r1) const;

  /// Inverse of row_slice: stack shards (same spec/cols, slice order) into
  /// one layer bitwise identical to the layer they were cut from.
  static QuantizedLinear row_concat(const std::vector<QuantizedLinear>& parts);

  bool operator==(const QuantizedLinear& other) const;

 private:
  std::uint32_t code_at(std::size_t r, std::size_t c) const;
  void set_code(std::size_t r, std::size_t c, std::uint32_t code);
  /// Derive blocked geometry + the dequant acceleration arrays from
  /// spec_/rows_/cols_/group_params_ (ctor and both deserializers).
  void init_geometry();
  void finalize_dequant();

  QuantSpec spec_;  // group_size normalized into [1, cols]
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  int packed_bits_ = 4;             // stored code width: 1/2/4/8
  std::size_t group_len_ = 0;       // codes per full group
  std::size_t groups_ = 0;          // groups per row
  std::size_t bytes_per_group_ = 0; // uniform block stride, tail included
  std::vector<std::uint8_t> codes_;       // rows × groups × bytes_per_group
  std::vector<GroupParams> group_params_;  // rows × groups
  // Affine dequant planes for the kernels: w = dq_scale·q + dq_bias
  // (dq_bias = -scale·zero). Derived, never serialized; empty for fp4.
  std::vector<float> dq_scale_;
  std::vector<float> dq_bias_;
};

}  // namespace aptq
