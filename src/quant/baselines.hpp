// The comparison methods of Tables 1-2, each implemented per its source
// paper's core mechanism (scaled to this build's model sizes):
//   PB-LLM      — partial binarization: salient weights FP, rest ±α (row-wise)
//   OWQ         — weak (outlier) input columns FP, rest GPTQ 4-bit
//   SmoothQuant — activation→weight difficulty migration folded into the
//                 preceding RMSNorm gain, then W4 RTN + simulated A8
//   LLM-QAT     — data-free QAT: train on sequences sampled from the FP
//                 model with straight-through-estimator fake quantization
//                 and logit distillation
#pragma once

#include <vector>

#include "model/model.hpp"
#include "quant/gptq.hpp"
#include "quant/qformat.hpp"

namespace aptq {

// ---------------------------------------------------------------- PB-LLM --

/// PB-LLM configuration: fraction of salient weights kept in FP16/FP32.
struct PbLlmConfig {
  double salient_fraction = 0.2;  ///< ρ: FP weights (paper: 10-30%)
};

/// Result of partially binarizing one layer.
struct PbLlmResult {
  Matrix weight;      ///< dequantized mixed binarized/FP weights (out-major)
  double avg_bits = 0.0;  ///< 16ρ + 1(1−ρ)
};

/// Binarize `w` (out-major), keeping the `salient_fraction` of weights with
/// the largest diag(H)·w² saliency in full precision; the rest become
/// row-wise ±α with α = mean|w| over the binarized set.
PbLlmResult pbllm_quantize(const Matrix& w, const Matrix& h,
                           const PbLlmConfig& config);

// ------------------------------------------------------------------ OWQ --

/// OWQ configuration.
struct OwqConfig {
  QuantSpec spec;                  ///< grid for the non-outlier columns
  double fp_column_fraction = 0.01;  ///< weak columns kept FP
  std::size_t block_size = 16;
  double damp = 0.01;
};

/// Result of OWQ on one layer.
struct OwqResult {
  Matrix weight;
  std::vector<std::size_t> fp_columns;
  double avg_bits = 0.0;  ///< bits including the FP columns at 16
};

/// Quantize with GPTQ while keeping the most activation-sensitive input
/// columns (largest diag(H)·||w_col||²) in full precision.
OwqResult owq_quantize(const Matrix& w, const Matrix& h,
                       const OwqConfig& config);

// ---------------------------------------------------------- SmoothQuant --

/// Per-block maxima of the activations feeding each norm-adjacent linear
/// group (collected over calibration segments).
struct ActivationMaxima {
  /// Per block: max |normed1| per channel (q/k/v input).
  std::vector<std::vector<float>> attn_input;
  /// Per block: max |normed2| per channel (gate/up input).
  std::vector<std::vector<float>> ffn_input;
};

/// Run the calibration segments and record per-channel activation maxima.
ActivationMaxima collect_activation_maxima(const Model& model,
                                           std::span<const TokenSeq> segments);

/// SmoothQuant configuration.
struct SmoothQuantConfig {
  double alpha = 0.5;    ///< migration strength s_j = max|X|^α / max|W|^(1−α)
  int weight_bits = 4;
  std::size_t group_size = 16;
  int act_bits = 8;      ///< simulated activation precision at inference
};

/// Apply difficulty migration in place (folds 1/s into the preceding norm
/// gain and s into the q/k/v or gate/up weights), then RTN-quantize all
/// linear weights. The caller must evaluate the returned model with
/// ForwardOptions{.act_quant_bits = config.act_bits}.
void smoothquant_apply(Model& model, const ActivationMaxima& maxima,
                       const SmoothQuantConfig& config);

// ------------------------------------------------------------------ AWQ --

/// AWQ-style activation-aware weight-only scaling: per-channel scales
/// s_j = max|X_j|^α with α grid-searched per norm-adjacent weight group to
/// minimize the activation-weighted quantization error, folded into the
/// preceding RMSNorm gain exactly like SmoothQuant, followed by group RTN.
struct AwqConfig {
  QuantSpec spec;  ///< weight grid (4-bit in the original paper)
  std::vector<double> alpha_grid = {0.0, 0.25, 0.5, 0.75, 1.0};
};

/// Apply AWQ in place (scale search + folding + RTN on every linear).
/// Returns the α chosen for each (block, group) pair — 2 entries per block
/// (attention input group, FFN input group) — for diagnostics.
std::vector<double> awq_apply(Model& model, const ActivationMaxima& maxima,
                              const AwqConfig& config);

// -------------------------------------------------------------- LLM-QAT --

/// Data-free QAT configuration.
struct QatConfig {
  QuantSpec spec;             ///< weight grid during STE training
  std::size_t steps = 150;
  std::size_t batch_size = 4;
  std::size_t seq_len = 32;
  std::size_t pool_sequences = 64;  ///< teacher-sampled training pool
  float lr = 1e-3f;
  float sample_temperature = 1.0f;
  std::uint64_t seed = 0x9A7;
};

/// LLM-QAT-style fine-tuning: sample a training pool from `teacher`, then
/// optimize a copy with fake-quantized linear weights (straight-through
/// gradients) against the teacher's soft logits. Returns the final model
/// with quantized linear weights applied.
Model qat_finetune(const Model& teacher, const QatConfig& config);

/// Fake-quantize every linear weight of `model` in place (embeddings and
/// norms untouched) — the quantized "view" used inside QAT and by RTN-style
/// whole-model baselines. Weights are quantized in the out-major orientation
/// (groups along the input dimension). lm_head is included only if
/// `include_lm_head`.
void quantize_model_weights_rtn(Model& model, const QuantSpec& spec,
                                bool include_lm_head = false);

}  // namespace aptq
