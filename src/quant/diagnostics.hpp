// Quantization drift diagnostics: where in the network does a quantized
// model diverge from its full-precision reference? Runs both models over
// probe segments and attributes the divergence to each block's residual
// stream — the analysis a practitioner runs when a quantized model
// regresses.
#pragma once

#include <string>
#include <vector>

#include "data/vocab.hpp"
#include "model/model.hpp"

namespace aptq {

/// Divergence of one block's output between reference and quantized model.
struct BlockDrift {
  std::size_t block = 0;
  double mse = 0.0;       ///< mean squared residual-stream difference
  double relative = 0.0;  ///< mse / mean squared reference activation
};

/// Full drift report.
struct DriftReport {
  std::vector<BlockDrift> blocks;  ///< per block, network order
  double logits_mse = 0.0;
  double logits_relative = 0.0;
  double kl_divergence = 0.0;  ///< mean KL(ref ‖ quant) of next-token dists
};

/// Compare `quantized` against `reference` over the probe segments. The two
/// models must share a configuration.
DriftReport compare_models(const Model& reference, const Model& quantized,
                           std::span<const TokenSeq> segments);

/// Render the report as an aligned text table.
std::string render_drift_report(const DriftReport& report);

}  // namespace aptq
