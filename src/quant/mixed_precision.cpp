#include "quant/mixed_precision.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/gptq.hpp"
#include "tensor/ops.hpp"

namespace aptq {

std::vector<LayerSensitivity> rank_sensitivities(
    const CalibrationResult& calibration, const Model& model,
    SensitivityMetric metric) {
  obs::TraceSpan span("mixed.rank_sensitivities", "quant");
  APTQ_CHECK(!calibration.layers.empty(), "rank_sensitivities: empty input");
  // Weight lookup for the error-weighted metric.
  std::map<std::string, const Matrix*> weights;
  for (const auto& ref : collect_linears(model, true)) {
    weights[ref.name] = ref.weight;
  }

  std::vector<LayerSensitivity> out;
  out.reserve(calibration.layers.size());
  for (const auto& layer : calibration.layers) {
    LayerSensitivity s;
    s.name = layer.name;
    s.weight_count = layer.weight_count;
    s.block = layer.block;
    s.sensitivity = layer.avg_trace;
    if (metric == SensitivityMetric::trace_times_err) {
      const auto it = weights.find(layer.name);
      APTQ_CHECK(it != weights.end(),
                 "rank_sensitivities: layer not in model: " + layer.name);
      QuantSpec spec2;
      spec2.bits = 2;
      // The weight matrices are stored input-major; quantize the out-major
      // view so groups run along the input dimension as in the solver.
      const Matrix wt = it->second->transposed();
      const Matrix q2 = rtn_quantize(wt, spec2);
      const double err = frobenius_distance(wt, q2);
      s.sensitivity *= err * err / static_cast<double>(wt.size());
    }
    obs::layer_stat(s.name, "alloc.sensitivity", s.sensitivity);
    out.push_back(std::move(s));
  }
  return out;
}

BitAllocation allocate_by_sensitivity(
    const std::vector<LayerSensitivity>& ranking, double ratio_high,
    int high_bits, int low_bits) {
  APTQ_CHECK(ratio_high >= 0.0 && ratio_high <= 1.0,
             "allocate_by_sensitivity: ratio out of range");
  APTQ_CHECK(high_bits > low_bits, "allocate_by_sensitivity: bit order");
  std::vector<const LayerSensitivity*> order;
  std::size_t total = 0;
  for (const auto& s : ranking) {
    order.push_back(&s);
    total += s.weight_count;
  }
  // Descending sensitivity, ties broken by ranking order (the pointers
  // index into `ranking`, so address order is ranking order). The explicit
  // tiebreak makes std::sort reproduce std::stable_sort without the
  // temporary buffer the latter allocates.
  std::sort(order.begin(), order.end(),
            [](const LayerSensitivity* a, const LayerSensitivity* b) {
              if (a->sensitivity != b->sensitivity) {
                return a->sensitivity > b->sensitivity;
              }
              return a < b;
            });
  BitAllocation alloc;
  const double target = ratio_high * static_cast<double>(total);
  double covered = 0.0;
  for (const auto* s : order) {
    if (covered < target) {
      alloc[s->name] = high_bits;
      covered += static_cast<double>(s->weight_count);
    } else {
      alloc[s->name] = low_bits;
    }
  }
  return alloc;
}

BitAllocation allocate_blockwise(
    const std::vector<LayerSensitivity>& ranking, double ratio_high,
    int high_bits, int low_bits) {
  APTQ_CHECK(ratio_high >= 0.0 && ratio_high <= 1.0,
             "allocate_blockwise: ratio out of range");
  std::size_t total = 0;
  std::map<std::size_t, std::size_t> block_weights;
  for (const auto& s : ranking) {
    total += s.weight_count;
    block_weights[s.block] += s.weight_count;
  }
  // Assign whole blocks high precision, in network order, until covered.
  const double target = ratio_high * static_cast<double>(total);
  double covered = 0.0;
  std::map<std::size_t, int> block_bits;
  for (const auto& [block, weight] : block_weights) {
    if (covered < target) {
      block_bits[block] = high_bits;
      covered += static_cast<double>(weight);
    } else {
      block_bits[block] = low_bits;
    }
  }
  BitAllocation alloc;
  for (const auto& s : ranking) {
    alloc[s.name] = block_bits.at(s.block);
  }
  return alloc;
}

BitAllocation allocate_knapsack(const std::vector<LayerSensitivity>& ranking,
                                const Model& model, double target_avg_bits,
                                std::span<const int> bit_menu,
                                std::size_t group_size) {
  APTQ_CHECK(bit_menu.size() >= 2, "allocate_knapsack: menu too small");
  std::vector<int> menu(bit_menu.begin(), bit_menu.end());
  std::sort(menu.begin(), menu.end());
  APTQ_CHECK(menu.front() >= 1 && menu.back() <= 8,
             "allocate_knapsack: menu out of range");
  APTQ_CHECK(target_avg_bits >= menu.front() &&
                 target_avg_bits <= menu.back(),
             "allocate_knapsack: target outside menu range");

  std::map<std::string, const Matrix*> weights;
  for (const auto& ref : collect_linears(model, true)) {
    weights[ref.name] = ref.weight;
  }

  // Per layer, per menu width: predicted loss = sensitivity × RTN error.
  struct Entry {
    const LayerSensitivity* layer;
    std::vector<double> loss;  // indexed by menu position
    std::size_t level = 0;     // current menu position
  };
  std::vector<Entry> entries;
  std::size_t total_weights = 0;
  for (const auto& s : ranking) {
    const auto it = weights.find(s.name);
    APTQ_CHECK(it != weights.end(),
               "allocate_knapsack: layer not in model: " + s.name);
    Entry e;
    e.layer = &s;
    const Matrix wt = it->second->transposed();
    for (const int bits : menu) {
      QuantSpec spec;
      spec.bits = bits;
      spec.group_size = group_size;
      const Matrix q = rtn_quantize(wt, spec);
      const double err = frobenius_distance(wt, q);
      e.loss.push_back(s.sensitivity * err * err /
                       static_cast<double>(wt.size()));
    }
    entries.push_back(std::move(e));
    total_weights += s.weight_count;
  }

  // Greedy: start everything at the lowest width, repeatedly apply the
  // upgrade with the highest loss reduction per added bit that still fits.
  double budget = target_avg_bits * static_cast<double>(total_weights);
  double spent = static_cast<double>(menu.front()) *
                 static_cast<double>(total_weights);
  while (true) {
    double best_gain = 0.0;
    Entry* best_entry = nullptr;
    for (auto& e : entries) {
      if (e.level + 1 >= menu.size()) {
        continue;
      }
      const double added_bits =
          static_cast<double>(menu[e.level + 1] - menu[e.level]) *
          static_cast<double>(e.layer->weight_count);
      if (spent + added_bits > budget + 1e-6) {
        continue;
      }
      const double gain =
          (e.loss[e.level] - e.loss[e.level + 1]) / added_bits;
      if (gain > best_gain) {
        best_gain = gain;
        best_entry = &e;
      }
    }
    if (best_entry == nullptr) {
      break;
    }
    spent += static_cast<double>(menu[best_entry->level + 1] -
                                 menu[best_entry->level]) *
             static_cast<double>(best_entry->layer->weight_count);
    ++best_entry->level;
  }

  BitAllocation alloc;
  for (const auto& e : entries) {
    alloc[e.layer->name] = menu[e.level];
  }
  return alloc;
}

double average_bits(const BitAllocation& allocation,
                    const std::vector<LayerSensitivity>& ranking) {
  double bits = 0.0;
  double total = 0.0;
  for (const auto& s : ranking) {
    const auto it = allocation.find(s.name);
    APTQ_CHECK(it != allocation.end(),
               "average_bits: layer missing from allocation: " + s.name);
    bits += static_cast<double>(it->second) * s.weight_count;
    total += static_cast<double>(s.weight_count);
  }
  APTQ_CHECK(total > 0.0, "average_bits: empty ranking");
  return bits / total;
}

double high_bit_fraction(const BitAllocation& allocation,
                         const std::vector<LayerSensitivity>& ranking,
                         int high_bits) {
  double high = 0.0;
  double total = 0.0;
  for (const auto& s : ranking) {
    const auto it = allocation.find(s.name);
    APTQ_CHECK(it != allocation.end(),
               "high_bit_fraction: layer missing: " + s.name);
    if (it->second == high_bits) {
      high += static_cast<double>(s.weight_count);
    }
    total += static_cast<double>(s.weight_count);
  }
  return total > 0.0 ? high / total : 0.0;
}

}  // namespace aptq
