#include "quant/hessian.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace aptq {

HessianAccumulator::HessianAccumulator(std::size_t dim) : h_(dim, dim) {
  APTQ_CHECK(dim >= 1, "HessianAccumulator: dim must be positive");
}

void HessianAccumulator::add_token(std::span<const float> x, float gamma) {
  const std::size_t d = h_.rows();
  APTQ_CHECK(x.size() == d, "HessianAccumulator: token width mismatch");
  APTQ_CHECK(gamma >= 0.0f, "HessianAccumulator: negative weight");
  // Upper triangle only; mirrored in finalized().
  for (std::size_t i = 0; i < d; ++i) {
    const float gi = gamma * x[i];
    if (gi == 0.0f) {
      continue;
    }
    float* row = h_.data() + i * d;
    for (std::size_t j = i; j < d; ++j) {
      row[j] += gi * x[j];
    }
  }
  ++tokens_;
}

void HessianAccumulator::add_matrix(const Matrix& x,
                                    std::span<const float> gamma) {
  APTQ_CHECK(gamma.empty() || gamma.size() == x.rows(),
             "HessianAccumulator: gamma length mismatch");
  const std::size_t d = h_.rows();
  APTQ_CHECK(x.cols() == d || x.rows() == 0,
             "HessianAccumulator: token width mismatch");
  for (const float g : gamma) {
    APTQ_CHECK(g >= 0.0f, "HessianAccumulator: negative weight");
  }
  // SYRK fast path: upper(H) += Xᵀ·diag(γ)·X through the register-tiled
  // micro-kernel — half the flops of the full product and cache-blocked
  // token panels instead of one rank-1 sweep per token. Tile and chunk
  // boundaries depend only on the shape, so the result is bitwise identical
  // at any thread count; it is tolerance-equal (not bitwise) to the
  // token-by-token add_token path, which ref::syrk_upper retains as the
  // oracle (docs/KERNELS.md).
  if (x.rows() > 0) {
    obs::TraceSpan span("hessian.accumulate", "quant");
    syrk_upper(x, gamma, 1.0f, h_);
  }
  tokens_ += x.rows();
  if (obs::telemetry_enabled()) {
    static auto& tokens = obs::counter("hessian.tokens");
    tokens.add(x.rows());
  }
}

Matrix HessianAccumulator::finalized() const {
  APTQ_CHECK(tokens_ > 0, "HessianAccumulator: no tokens accumulated");
  const std::size_t d = h_.rows();
  Matrix out(d, d);
  const float norm = 2.0f / static_cast<float>(tokens_);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      const float v = h_(i, j) * norm;
      out(i, j) = v;
      out(j, i) = v;
    }
  }
  return out;
}

Matrix HessianAccumulator::finalized_damped(double damp) const {
  Matrix h = finalized();
  const std::size_t d = h.rows();
  // Dead columns (never-activated inputs): pin the diagonal so the Cholesky
  // factorization exists; the solver zeroes the matching weights.
  for (std::size_t i = 0; i < d; ++i) {
    if (h(i, i) == 0.0f) {
      h(i, i) = 1.0f;
    }
  }
  const double mean_diag = diag_mean(h);
  const float jitter = static_cast<float>(damp * mean_diag);
  for (std::size_t i = 0; i < d; ++i) {
    h(i, i) += jitter;
  }
  return h;
}

double HessianAccumulator::average_trace() const {
  APTQ_CHECK(tokens_ > 0, "HessianAccumulator: no tokens accumulated");
  double tr = 0.0;
  for (std::size_t i = 0; i < h_.rows(); ++i) {
    tr += h_(i, i);
  }
  return 2.0 * tr / static_cast<double>(tokens_) /
         static_cast<double>(h_.rows());
}

double hutchinson_trace(const Matrix& h, std::size_t probes, Rng& rng) {
  APTQ_CHECK(h.rows() == h.cols(), "hutchinson_trace: square matrix required");
  APTQ_CHECK(probes >= 1, "hutchinson_trace: need at least one probe");
  const std::size_t d = h.rows();
  std::vector<float> z(d), hz(d);
  double total = 0.0;
  for (std::size_t p = 0; p < probes; ++p) {
    for (auto& v : z) {
      v = rng.uniform() < 0.5 ? -1.0f : 1.0f;
    }
    // H is symmetric, so the probe matvec reads only the diagonal and
    // upper triangle — d²/2 element loads per probe instead of the dense
    // d² (tolerance-checked against the dense matvec in hessian_test).
    symv_upper(h, z, hz);
    total += dot(z, hz);
  }
  return total / static_cast<double>(probes);
}

std::vector<std::size_t> dead_columns(const Matrix& h) {
  APTQ_CHECK(h.rows() == h.cols(), "dead_columns: square matrix required");
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < h.rows(); ++i) {
    if (h(i, i) == 0.0f) {
      dead.push_back(i);
    }
  }
  return dead;
}

}  // namespace aptq
