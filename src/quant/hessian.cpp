#include "quant/hessian.hpp"

#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace aptq {

HessianAccumulator::HessianAccumulator(std::size_t dim) : h_(dim, dim) {
  APTQ_CHECK(dim >= 1, "HessianAccumulator: dim must be positive");
}

void HessianAccumulator::add_token(std::span<const float> x, float gamma) {
  const std::size_t d = h_.rows();
  APTQ_CHECK(x.size() == d, "HessianAccumulator: token width mismatch");
  APTQ_CHECK(gamma >= 0.0f, "HessianAccumulator: negative weight");
  // Upper triangle only; mirrored in finalized().
  for (std::size_t i = 0; i < d; ++i) {
    const float gi = gamma * x[i];
    if (gi == 0.0f) {
      continue;
    }
    float* row = h_.data() + i * d;
    for (std::size_t j = i; j < d; ++j) {
      row[j] += gi * x[j];
    }
  }
  ++tokens_;
}

void HessianAccumulator::add_matrix(const Matrix& x,
                                    std::span<const float> gamma) {
  APTQ_CHECK(gamma.empty() || gamma.size() == x.rows(),
             "HessianAccumulator: gamma length mismatch");
  const std::size_t d = h_.rows();
  APTQ_CHECK(x.cols() == d || x.rows() == 0,
             "HessianAccumulator: token width mismatch");
  for (const float g : gamma) {
    APTQ_CHECK(g >= 0.0f, "HessianAccumulator: negative weight");
  }
  // Parallel over rows of H: each element h(i, j) is owned by exactly one
  // chunk and accumulates its tokens in call order, so the result is
  // bitwise identical to the serial token-by-token path at any thread
  // count. The upper triangle makes early rows heavier, so the grain is
  // kept small to let chunk scheduling balance the load.
  const std::size_t t_count = x.rows();
  parallel_for(0, d, 4, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t t = 0; t < t_count; ++t) {
      const float* xt = x.data() + t * d;
      const float g = gamma.empty() ? 1.0f : gamma[t];
      for (std::size_t i = i0; i < i1; ++i) {
        const float gi = g * xt[i];
        if (gi == 0.0f) {
          continue;
        }
        float* row = h_.data() + i * d;
        for (std::size_t j = i; j < d; ++j) {
          row[j] += gi * xt[j];
        }
      }
    }
  });
  tokens_ += t_count;
}

Matrix HessianAccumulator::finalized() const {
  APTQ_CHECK(tokens_ > 0, "HessianAccumulator: no tokens accumulated");
  const std::size_t d = h_.rows();
  Matrix out(d, d);
  const float norm = 2.0f / static_cast<float>(tokens_);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      const float v = h_(i, j) * norm;
      out(i, j) = v;
      out(j, i) = v;
    }
  }
  return out;
}

Matrix HessianAccumulator::finalized_damped(double damp) const {
  Matrix h = finalized();
  const std::size_t d = h.rows();
  // Dead columns (never-activated inputs): pin the diagonal so the Cholesky
  // factorization exists; the solver zeroes the matching weights.
  for (std::size_t i = 0; i < d; ++i) {
    if (h(i, i) == 0.0f) {
      h(i, i) = 1.0f;
    }
  }
  const double mean_diag = diag_mean(h);
  const float jitter = static_cast<float>(damp * mean_diag);
  for (std::size_t i = 0; i < d; ++i) {
    h(i, i) += jitter;
  }
  return h;
}

double HessianAccumulator::average_trace() const {
  APTQ_CHECK(tokens_ > 0, "HessianAccumulator: no tokens accumulated");
  double tr = 0.0;
  for (std::size_t i = 0; i < h_.rows(); ++i) {
    tr += h_(i, i);
  }
  return 2.0 * tr / static_cast<double>(tokens_) /
         static_cast<double>(h_.rows());
}

double hutchinson_trace(const Matrix& h, std::size_t probes, Rng& rng) {
  APTQ_CHECK(h.rows() == h.cols(), "hutchinson_trace: square matrix required");
  APTQ_CHECK(probes >= 1, "hutchinson_trace: need at least one probe");
  const std::size_t d = h.rows();
  std::vector<float> z(d), hz(d);
  double total = 0.0;
  for (std::size_t p = 0; p < probes; ++p) {
    for (auto& v : z) {
      v = rng.uniform() < 0.5 ? -1.0f : 1.0f;
    }
    for (std::size_t i = 0; i < d; ++i) {
      hz[i] = dot(h.row(i), z);
    }
    total += dot(z, hz);
  }
  return total / static_cast<double>(probes);
}

std::vector<std::size_t> dead_columns(const Matrix& h) {
  APTQ_CHECK(h.rows() == h.cols(), "dead_columns: square matrix required");
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < h.rows(); ++i) {
    if (h(i, i) == 0.0f) {
      dead.push_back(i);
    }
  }
  return dead;
}

}  // namespace aptq
