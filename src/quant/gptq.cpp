#include "quant/gptq.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/hessian.hpp"
#include "tensor/cholesky.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace aptq {

namespace {

// Permute matrix columns: out[:, i] = in[:, perm[i]].
Matrix permute_cols(const Matrix& in, const std::vector<std::size_t>& perm) {
  Matrix out(in.rows(), in.cols());
  for (std::size_t r = 0; r < in.rows(); ++r) {
    for (std::size_t c = 0; c < in.cols(); ++c) {
      out(r, c) = in(r, perm[c]);
    }
  }
  return out;
}

// Symmetric permutation of a square matrix.
Matrix permute_sym(const Matrix& in, const std::vector<std::size_t>& perm) {
  Matrix out(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.rows(); ++i) {
    for (std::size_t j = 0; j < in.cols(); ++j) {
      out(i, j) = in(perm[i], perm[j]);
    }
  }
  return out;
}

}  // namespace

GptqResult gptq_quantize(const Matrix& w, const Matrix& h,
                         const GptqConfig& config) {
  obs::TraceSpan span("gptq.solve", "quant");
  config.spec.validate();
  const std::size_t d_out = w.rows();
  const std::size_t d_in = w.cols();
  APTQ_CHECK(h.rows() == d_in && h.cols() == d_in,
             "gptq_quantize: Hessian shape mismatch");
  APTQ_CHECK(config.block_size >= 1, "gptq_quantize: block_size must be >= 1");
  APTQ_CHECK(config.damp > 0.0, "gptq_quantize: damp must be positive");

  Matrix work = w;
  Matrix hess = h;

  // Dead inputs: zero the weight column (it never sees data) and pin the
  // diagonal so the factorization exists.
  for (const std::size_t c : dead_columns(hess)) {
    for (std::size_t r = 0; r < d_out; ++r) {
      work(r, c) = 0.0f;
    }
    hess(c, c) = 1.0f;
  }

  // Optional activation-order permutation (descending diag(H)).
  std::vector<std::size_t> perm(d_in);
  std::iota(perm.begin(), perm.end(), 0);
  if (config.act_order) {
    // Descending diagonal with an index tiebreak: equivalent to
    // std::stable_sort but allocation-free on the hot path.
    std::sort(perm.begin(), perm.end(),
              [&hess](std::size_t a, std::size_t b) {
                if (hess(a, a) != hess(b, b)) {
                  return hess(a, a) > hess(b, b);
                }
                return a < b;
              });
    work = permute_cols(work, perm);
    hess = permute_sym(hess, perm);
  }

  // Dampening.
  const float jitter = static_cast<float>(config.damp * diag_mean(hess));
  for (std::size_t i = 0; i < d_in; ++i) {
    hess(i, i) += jitter;
  }

  const Matrix u = gptq_inverse_factor(hess);  // upper, H⁻¹ = UᵀU

  // FP-column mask in permuted coordinates (OWQ weak columns).
  std::vector<char> keep_fp(d_in, 0);
  for (const std::size_t c : config.fp_columns) {
    APTQ_CHECK(c < d_in, "gptq_quantize: fp column out of range");
    keep_fp[c] = 1;
  }
  if (config.act_order && !config.fp_columns.empty()) {
    std::vector<char> permuted(d_in, 0);
    for (std::size_t i = 0; i < d_in; ++i) {
      permuted[i] = keep_fp[perm[i]];
    }
    keep_fp = std::move(permuted);
  }

  const std::size_t group =
      config.spec.group_size == 0 ? d_in : config.spec.group_size;
  const std::size_t block = config.block_size;

  // Rows solve independently: each reads only the shared inverse factor and
  // its own weight row, so the rows fan out across the thread pool and every
  // row runs the exact serial column sweep (bitwise-identical weights at any
  // thread count). Per-row Σe² partials are folded in ascending row order,
  // which keeps the reported proxy loss thread-count invariant too.
  const double proxy_loss = parallel_reduce(
      0, d_out, 1, 0.0,
      [&](std::size_t r0, std::size_t r1) {
        std::vector<float> err_block(block);
        double loss = 0.0;
        for (std::size_t r = r0; r < r1; ++r) {
          float* wr = work.data() + r * d_in;
          GroupParams params;  // params of the active group
          for (std::size_t i1 = 0; i1 < d_in; i1 += block) {
            const std::size_t i2 = std::min(i1 + block, d_in);

            for (std::size_t j = i1; j < i2; ++j) {
              if (j % group == 0) {
                // Fit the row's grid on the *updated* weights of this group
                // (error feedback from earlier columns is already applied).
                const std::size_t glen = std::min(group, d_in - j);
                params = fit_group_params(
                    std::span<const float>(wr + j, glen), config.spec);
              }
              if (keep_fp[j]) {
                // Weak column kept in full precision: no error to spread.
                err_block[j - i1] = 0.0f;
                continue;
              }
              const float djj = u(j, j);
              const float wv = wr[j];
              const float q =
                  quantize_dequantize_value(wv, params, config.spec);
              wr[j] = q;
              const float e = (wv - q) / djj;
              err_block[j - i1] = e;
              loss += static_cast<double>(e) * e;
              // Propagate into the remaining columns of this block.
              if (e != 0.0f) {
                const float* ur = u.data() + j * d_in;
                for (std::size_t c = j + 1; c < i2; ++c) {
                  wr[c] -= e * ur[c];
                }
              }
            }

            // Lazy panel update of everything beyond the block:
            // W[r, i2:] -= Err · U[i1:i2, i2:], folded four error rows at
            // a time by the micro-kernel layer (the fold order depends
            // only on the block shape, so results stay thread-count
            // invariant; it reassociates relative to the old one-row-at-a-
            // time sweep, covered by the existing solver tolerances).
            if (i2 < d_in) {
              kern::rank_update(wr + i2, d_in - i2, err_block.data(),
                                i2 - i1, u.data() + i1 * d_in + i2, d_in);
            }
          }
        }
        return loss;
      },
      [](double acc, double partial) { return acc + partial; });

  GptqResult result;
  if (config.act_order) {
    // Undo the permutation.
    std::vector<std::size_t> inv(d_in);
    for (std::size_t i = 0; i < d_in; ++i) {
      inv[perm[i]] = i;
    }
    result.weight = permute_cols(work, inv);
  } else {
    result.weight = std::move(work);
  }
  result.proxy_loss = proxy_loss;
  result.recon_error = reconstruction_error(w, result.weight, h);
  if (obs::telemetry_enabled()) {
    static auto& layers = obs::counter("gptq.layers_solved");
    static auto& cols = obs::counter("gptq.cols_quantized");
    layers.add(1);
    cols.add(d_in - config.fp_columns.size());
  }
  return result;
}

Matrix rtn_quantize(const Matrix& w, const QuantSpec& spec) {
  Matrix out = w;
  quantize_dequantize_matrix(out, spec);
  return out;
}

double reconstruction_error(const Matrix& w_ref, const Matrix& w_quant,
                            const Matrix& h) {
  APTQ_CHECK(w_ref.rows() == w_quant.rows() && w_ref.cols() == w_quant.cols(),
             "reconstruction_error: weight shape mismatch");
  APTQ_CHECK(h.rows() == w_ref.cols() && h.cols() == w_ref.cols(),
             "reconstruction_error: Hessian shape mismatch");
  Matrix delta = w_ref;
  axpy(-1.0f, w_quant, delta);
  const Matrix dh = matmul(delta, h);  // (d_out × d_in)
  double acc = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    acc += static_cast<double>(dh.flat()[i]) * delta.flat()[i];
  }
  return acc;
}

}  // namespace aptq
