#include "quant/qformat.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "util/threadpool.hpp"

namespace aptq {

void QuantSpec::validate() const {
  if (format == QFormat::fp4_e2m1) {
    APTQ_CHECK(bits == 4, "QuantSpec: fp4_e2m1 is a 4-bit format");
  } else {
    APTQ_CHECK(bits >= 1 && bits <= 8, "QuantSpec: bits out of range");
  }
}

namespace {

constexpr std::array<float, 8> kFp4Magnitudes = {0.0f, 0.5f, 1.0f, 1.5f,
                                                 2.0f, 3.0f, 4.0f, 6.0f};

std::int32_t clamp_code(long v, long lo, long hi) {
  return static_cast<std::int32_t>(std::clamp(v, lo, hi));
}

}  // namespace

std::span<const float> fp4_magnitudes() {
  return {kFp4Magnitudes.data(), kFp4Magnitudes.size()};
}

namespace {

// Grid MSE of `values` under `params` (used by the clip search).
double grid_mse(std::span<const float> values, const GroupParams& params,
                const QuantSpec& spec);

GroupParams fit_group_params_minmax(std::span<const float> values,
                                    const QuantSpec& spec);

}  // namespace

GroupParams fit_group_params(std::span<const float> values,
                             const QuantSpec& spec) {
  spec.validate();
  APTQ_CHECK(!values.empty(), "fit_group_params: empty group");
  if (!spec.mse_clip_search || spec.format == QFormat::fp4_e2m1) {
    return fit_group_params_minmax(values, spec);
  }
  // Clip search: shrink the representable range by a factor c and keep the
  // c minimizing the squared rounding error (clipped tails trade against
  // finer steps for the bulk).
  QuantSpec base = spec;
  base.mse_clip_search = false;
  GroupParams best = fit_group_params_minmax(values, base);
  double best_mse = grid_mse(values, best, base);
  for (const float clip : {0.95f, 0.9f, 0.85f, 0.8f, 0.7f, 0.6f}) {
    std::vector<float> shrunk(values.begin(), values.end());
    for (float& v : shrunk) {
      v *= clip;
    }
    GroupParams p = fit_group_params_minmax(shrunk, base);
    const double mse = grid_mse(values, p, base);
    if (mse < best_mse) {
      best_mse = mse;
      best = p;
    }
  }
  return best;
}

namespace {

double grid_mse(std::span<const float> values, const GroupParams& params,
                const QuantSpec& spec) {
  double mse = 0.0;
  for (const float v : values) {
    const double d = quantize_dequantize_value(v, params, spec) - v;
    mse += d * d;
  }
  return mse;
}

GroupParams fit_group_params_minmax(std::span<const float> values,
                                    const QuantSpec& spec) {
  GroupParams p;
  if (spec.format == QFormat::fp4_e2m1) {
    float max_abs = 0.0f;
    for (const float v : values) {
      max_abs = std::max(max_abs, std::fabs(v));
    }
    p.scale = max_abs > 0.0f ? max_abs / kFp4Magnitudes.back() : 1.0f;
    p.zero_point = 0;
    return p;
  }
  const long qmax = (1L << spec.bits) - 1;
  if (spec.symmetric) {
    float max_abs = 0.0f;
    for (const float v : values) {
      max_abs = std::max(max_abs, std::fabs(v));
    }
    const long half = 1L << (spec.bits - 1);
    // Codes span [1, 2^bits - 1]: code 0 is sacrificed so the grid is odd-
    // symmetric around the zero-point and ±max_abs are both exactly
    // representable. (With the former max_abs/half scale, +max_abs mapped
    // to code 2^bits, clamped, and dequantized a full step short.)
    const long span = half > 1 ? half - 1 : 1;
    p.scale = max_abs > 0.0f ? max_abs / static_cast<float>(span)
                             : 1.0f;
    p.zero_point = static_cast<std::int32_t>(half);
    return p;
  }
  float lo = values[0];
  float hi = values[0];
  for (const float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // The grid must contain zero so that exact-zero weights stay exact.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  if (hi == lo) {
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = (hi - lo) / static_cast<float>(qmax);
  p.zero_point = clamp_code(std::lround(-lo / p.scale), 0, qmax);
  return p;
}

}  // namespace

std::int32_t quantize_value(float v, const GroupParams& params,
                            const QuantSpec& spec) {
  if (spec.format == QFormat::fp4_e2m1) {
    const float scaled = params.scale > 0.0f ? v / params.scale : 0.0f;
    const float mag = std::fabs(scaled);
    std::size_t best = 0;
    float best_err = std::fabs(mag - kFp4Magnitudes[0]);
    for (std::size_t i = 1; i < kFp4Magnitudes.size(); ++i) {
      const float err = std::fabs(mag - kFp4Magnitudes[i]);
      if (err < best_err) {
        best_err = err;
        best = i;
      }
    }
    const std::int32_t sign = scaled < 0.0f ? 1 : 0;
    return static_cast<std::int32_t>((sign << 3) | static_cast<int>(best));
  }
  const long qmax = (1L << spec.bits) - 1;
  // Symmetric grids reserve code 0 (see fit_group_params_minmax) so that
  // the code range is odd-symmetric around the zero-point.
  const long qmin = spec.symmetric && spec.bits > 1 ? 1 : 0;
  const float t = v / params.scale;
  // kern::nearest_int is exact for |t| < 2^22; grid-fitted scales keep t
  // within a few hundred, but corrupt or adversarial inputs can overflow
  // the window — those saturate straight to the grid edge.
  const long rounded = std::fabs(t) < 4194304.0f
                           ? static_cast<long>(kern::nearest_int(t))
                           : (t > 0.0f ? 1L << 30 : -(1L << 30));
  return clamp_code(rounded + params.zero_point, qmin, qmax);
}

float dequantize_value(std::int32_t code, const GroupParams& params) {
  return static_cast<float>(code - params.zero_point) * params.scale;
}

float quantize_dequantize_value(float v, const GroupParams& params,
                                const QuantSpec& spec) {
  const std::int32_t code = quantize_value(v, params, spec);
  if (spec.format == QFormat::fp4_e2m1) {
    const float mag = kFp4Magnitudes[static_cast<std::size_t>(code & 0x7)];
    return ((code >> 3) != 0 ? -mag : mag) * params.scale;
  }
  return dequantize_value(code, params);
}

std::size_t group_count(std::size_t row_len, const QuantSpec& spec) {
  const std::size_t g = spec.group_size == 0 ? row_len : spec.group_size;
  return (row_len + g - 1) / g;
}

std::vector<GroupParams> quantize_dequantize_row(std::span<float> row,
                                                 const QuantSpec& spec) {
  spec.validate();
  const std::size_t g = spec.group_size == 0 ? row.size() : spec.group_size;
  std::vector<GroupParams> params;
  params.reserve(group_count(row.size(), spec));
  for (std::size_t start = 0; start < row.size(); start += g) {
    const std::size_t len = std::min(g, row.size() - start);
    auto group = row.subspan(start, len);
    const GroupParams p = fit_group_params(group, spec);
    for (float& v : group) {
      v = quantize_dequantize_value(v, p, spec);
    }
    params.push_back(p);
  }
  return params;
}

void quantize_dequantize_matrix(Matrix& w, const QuantSpec& spec) {
  for (std::size_t r = 0; r < w.rows(); ++r) {
    quantize_dequantize_row(w.row(r), spec);
  }
}

QuantizedLinear::QuantizedLinear(const Matrix& w, const QuantSpec& spec)
    : spec_(spec), rows_(w.rows()), cols_(w.cols()) {
  spec.validate();
  // Normalize group_size into [1, cols]: 0 (whole row) and over-long groups
  // both mean "one group spans the row". Serialized v3 records therefore
  // always carry an in-range group_size, which lets the loader reject 0 and
  // > cols as corruption.
  if (cols_ > 0 && (spec_.group_size == 0 || spec_.group_size > cols_)) {
    spec_.group_size = cols_;
  }
  init_geometry();
  codes_.assign(rows_ * groups_ * bytes_per_group_, 0);
  group_params_.assign(rows_ * groups_, GroupParams{});
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto row = w.row(r);
    for (std::size_t g = 0; g < groups_; ++g) {
      const std::size_t start = g * group_len_;
      const std::size_t len = std::min(group_len_, cols_ - start);
      const GroupParams p =
          fit_group_params(row.subspan(start, len), spec_);
      group_params_[r * groups_ + g] = p;
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t c = start + i;
        set_code(r, c,
                 static_cast<std::uint32_t>(quantize_value(row[c], p, spec_)));
      }
    }
  }
  finalize_dequant();
}

void QuantizedLinear::init_geometry() {
  // 1/2/4/8-bit codes pack exactly; 3-bit codes (and fp4) ride in nibbles.
  packed_bits_ = spec_.bits == 3 ? 4 : spec_.bits;
  group_len_ = spec_.group_size == 0 ? cols_ : spec_.group_size;
  groups_ = group_len_ > 0 ? (cols_ + group_len_ - 1) / group_len_ : 0;
  bytes_per_group_ =
      (group_len_ * static_cast<std::size_t>(packed_bits_) + 7) / 8;
}

void QuantizedLinear::finalize_dequant() {
  if (spec_.format != QFormat::int_affine) {
    dq_scale_.clear();
    dq_bias_.clear();
    return;
  }
  dq_scale_.resize(group_params_.size());
  dq_bias_.resize(group_params_.size());
  for (std::size_t i = 0; i < group_params_.size(); ++i) {
    dq_scale_[i] = group_params_[i].scale;
    dq_bias_[i] = -group_params_[i].scale *
                  static_cast<float>(group_params_[i].zero_point);
  }
}

bool QuantizedLinear::has_kernel_path() const {
  return spec_.format == QFormat::int_affine && cols_ > 0 &&
         (packed_bits_ == 4 || packed_bits_ == 8);
}

QBlock QuantizedLinear::block_view() const {
  QBlock b;
  b.codes = codes_.data();
  b.scale = dq_scale_.data();
  b.bias = dq_bias_.data();
  b.rows = rows_;
  b.cols = cols_;
  b.group_len = group_len_;
  b.groups = groups_;
  b.bytes_per_group = bytes_per_group_;
  b.bits = packed_bits_;
  return b;
}

std::uint32_t QuantizedLinear::code_at(std::size_t r, std::size_t c) const {
  const std::size_t g = c / group_len_;
  const std::size_t k = c - g * group_len_;
  const std::uint8_t* b =
      codes_.data() + (r * groups_ + g) * bytes_per_group_;
  if (packed_bits_ == 8) {
    return b[k];
  }
  if (packed_bits_ == 4) {
    // Split-nibble order (see QBlock): lows first, highs fold back onto the
    // same bytes.
    return k < bytes_per_group_
               ? static_cast<std::uint32_t>(b[k] & 0x0Fu)
               : static_cast<std::uint32_t>(b[k - bytes_per_group_] >> 4);
  }
  const std::size_t cpb = static_cast<std::size_t>(8 / packed_bits_);
  const int shift = static_cast<int>(k % cpb) * packed_bits_;
  return (b[k / cpb] >> shift) & ((1u << packed_bits_) - 1u);
}

void QuantizedLinear::set_code(std::size_t r, std::size_t c,
                               std::uint32_t code) {
  const std::size_t g = c / group_len_;
  const std::size_t k = c - g * group_len_;
  std::uint8_t* b = codes_.data() + (r * groups_ + g) * bytes_per_group_;
  if (packed_bits_ == 8) {
    b[k] = static_cast<std::uint8_t>(code);
  } else if (packed_bits_ == 4) {
    if (k < bytes_per_group_) {
      b[k] |= static_cast<std::uint8_t>(code & 0x0Fu);
    } else {
      b[k - bytes_per_group_] |= static_cast<std::uint8_t>((code & 0x0Fu) << 4);
    }
  } else {
    const std::size_t cpb = static_cast<std::size_t>(8 / packed_bits_);
    const int shift = static_cast<int>(k % cpb) * packed_bits_;
    b[k / cpb] |= static_cast<std::uint8_t>(code << shift);
  }
}

Matrix QuantizedLinear::dequantize() const {
  Matrix w(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const GroupParams& p = group_params_[r * groups_ + c / group_len_];
      const auto code = static_cast<std::int32_t>(code_at(r, c));
      if (spec_.format == QFormat::fp4_e2m1) {
        const float mag = fp4_magnitudes()[static_cast<std::size_t>(code & 7)];
        w(r, c) = ((code >> 3) != 0 ? -mag : mag) * p.scale;
      } else {
        w(r, c) = dequantize_value(code, p);
      }
    }
  }
  return w;
}

Matrix QuantizedLinear::matmul_transposed(const Matrix& x) const {
  APTQ_CHECK(x.cols() == cols_, "QuantizedLinear: input width mismatch");
  Matrix out(x.rows(), rows_);
  if (x.rows() == 1) {
    // Decode hot path: one token per call — fused GEMV, no row
    // materialization.
    matvec_transposed(x.row(0), out.row(0));
    return out;
  }
  if (has_kernel_path()) {
    // Each weight row is unpacked once and shared across the whole batch.
    kern::qgemv_multi(block_view(), x.data(), x.rows(), out.data());
    return out;
  }
  // Scalar fallback (fp4 and sub-nibble widths). Output rows are
  // independent: split them across the pool (fixed grain, disjoint writes —
  // bitwise identical at any thread count).
  parallel_for(0, rows_, 8, [&](std::size_t rb, std::size_t re) {
    std::vector<float> buf(cols_);
    for (std::size_t r = rb; r < re; ++r) {
      // Dequantize one weight row, then dot it with every input row.
      for (std::size_t c = 0; c < cols_; ++c) {
        const GroupParams& p = group_params_[r * groups_ + c / group_len_];
        const auto code = static_cast<std::int32_t>(code_at(r, c));
        if (spec_.format == QFormat::fp4_e2m1) {
          const float mag =
              fp4_magnitudes()[static_cast<std::size_t>(code & 7)];
          buf[c] = ((code >> 3) != 0 ? -mag : mag) * p.scale;
        } else {
          buf[c] = dequantize_value(code, p);
        }
      }
      for (std::size_t n = 0; n < x.rows(); ++n) {
        const float* xr = x.data() + n * cols_;
        float acc = 0.0f;
        for (std::size_t c = 0; c < cols_; ++c) {
          acc += xr[c] * buf[c];
        }
        out(n, r) = acc;
      }
    }
  });
  return out;
}

void QuantizedLinear::matvec_transposed_batch(const Matrix& x,
                                              Matrix& y) const {
  APTQ_CHECK(x.cols() == cols_, "QuantizedLinear: input width mismatch");
  APTQ_CHECK(y.rows() == x.rows() && y.cols() == rows_,
             "QuantizedLinear: batched output shape mismatch");
  if (x.rows() == 0) {
    return;
  }
  if (has_kernel_path()) {
    kern::qgemv_batch(block_view(), x.data(), x.rows(), y.data());
    return;
  }
  // Non-kernel formats keep the solo path per row; batching only helps the
  // blocked kernels, and the fallback is already bitwise-stable.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    matvec_transposed(x.row(i), y.row(i));
  }
}

void QuantizedLinear::matvec_transposed(std::span<const float> x,
                                        std::span<float> y) const {
  APTQ_CHECK(x.size() == cols_, "QuantizedLinear: input width mismatch");
  APTQ_CHECK(y.size() == rows_, "QuantizedLinear: output size mismatch");
  if (has_kernel_path()) {
    kern::qgemv(block_view(), x.data(), y.data());
    return;
  }
  // Scalar fallback for the non-kernel formats: dequantize in kChunk-wide
  // slices to an on-stack scratch, dot against x.
  constexpr std::size_t kChunk = 128;
  parallel_for(0, rows_, 16, [&](std::size_t rb, std::size_t re) {
    float buf[kChunk];
    for (std::size_t r = rb; r < re; ++r) {
      float acc = 0.0f;
      for (std::size_t g = 0; g < groups_; ++g) {
        const GroupParams& p = group_params_[r * groups_ + g];
        const std::size_t start = g * group_len_;
        const std::size_t len = std::min(group_len_, cols_ - start);
        for (std::size_t cb = 0; cb < len; cb += kChunk) {
          const std::size_t clen = std::min(kChunk, len - cb);
          for (std::size_t i = 0; i < clen; ++i) {
            const std::size_t c = start + cb + i;
            const auto code = static_cast<std::int32_t>(code_at(r, c));
            if (spec_.format == QFormat::fp4_e2m1) {
              const float mag =
                  fp4_magnitudes()[static_cast<std::size_t>(code & 7)];
              buf[i] = ((code >> 3) != 0 ? -mag : mag) * p.scale;
            } else {
              buf[i] = dequantize_value(code, p);
            }
          }
          const float* xc = x.data() + start + cb;
          for (std::size_t i = 0; i < clen; ++i) {
            acc += xc[i] * buf[i];
          }
        }
      }
      y[r] = acc;
    }
  });
}

std::size_t QuantizedLinear::storage_bytes() const {
  // Must match the serialized per-group layout exactly (f32 scale +
  // i32 zero_point) so bits_per_weight() agrees with the on-disk size.
  constexpr std::size_t kGroupParamBytes =
      sizeof(float) + sizeof(std::int32_t);
  return codes_.size() + group_params_.size() * kGroupParamBytes;
}

double QuantizedLinear::bits_per_weight() const {
  return 8.0 * static_cast<double>(storage_bytes()) /
         static_cast<double>(rows_ * cols_);
}

double QuantizedLinear::mean_group_scale() const {
  if (group_params_.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const GroupParams& p : group_params_) {
    acc += p.scale;
  }
  return acc / static_cast<double>(group_params_.size());
}

// Blocked record (packed file format v3). The prologue keeps the v2 field
// order (bits, group_size, format, flags, rows, cols) so header-offset
// corruption tests stay valid; the geometry field after it is the block
// stride bytes_per_group where v2 stored codes_per_byte, and the code bytes
// are blocked rather than row-major.
void QuantizedLinear::serialize(BinaryWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(spec_.bits));
  writer.write_u64(spec_.group_size);
  writer.write_u32(static_cast<std::uint32_t>(spec_.format));
  writer.write_u32(spec_.symmetric ? 1u : 0u);
  writer.write_u32(spec_.mse_clip_search ? 1u : 0u);
  writer.write_u64(rows_);
  writer.write_u64(cols_);
  writer.write_u64(bytes_per_group_);
  writer.write_bytes(codes_);
  writer.write_u64(group_params_.size());
  for (const GroupParams& p : group_params_) {
    writer.write_f32(p.scale);
    writer.write_i32(p.zero_point);
  }
}

QuantizedLinear QuantizedLinear::deserialize(BinaryReader& reader) {
  QuantizedLinear q;
  q.spec_.bits = static_cast<int>(reader.read_u32());
  q.spec_.group_size = reader.read_u64();
  const std::uint32_t format_code = reader.read_u32();
  APTQ_CHECK(format_code <= static_cast<std::uint32_t>(QFormat::fp4_e2m1),
             "QuantizedLinear: unknown format code " +
                 std::to_string(format_code));
  q.spec_.format = static_cast<QFormat>(format_code);
  q.spec_.symmetric = reader.read_u32() != 0;
  q.spec_.mse_clip_search = reader.read_u32() != 0;
  q.spec_.validate();
  q.rows_ = reader.read_u64();
  q.cols_ = reader.read_u64();
  // v3 always writes the normalized group size; 0 and > cols are corrupt.
  APTQ_CHECK(q.spec_.group_size >= 1 && q.spec_.group_size <= q.cols_,
             "QuantizedLinear: corrupt group_size " +
                 std::to_string(q.spec_.group_size));
  q.init_geometry();
  const std::uint64_t stride = reader.read_u64();
  APTQ_CHECK(stride == q.bytes_per_group_,
             "QuantizedLinear: corrupt block stride");
  q.codes_ = reader.read_bytes();
  APTQ_CHECK(q.codes_.size() == q.rows_ * q.groups_ * q.bytes_per_group_,
             "QuantizedLinear: corrupt code block");
  const std::uint64_t n_params = reader.read_u64();
  APTQ_CHECK(n_params == q.rows_ * q.groups_,
             "QuantizedLinear: corrupt group parameters");
  q.group_params_.resize(n_params);
  for (auto& p : q.group_params_) {
    p.scale = reader.read_f32();
    p.zero_point = reader.read_i32();
  }
  q.finalize_dequant();
  return q;
}

QuantizedLinear QuantizedLinear::deserialize_v2(BinaryReader& reader) {
  // v2 record: same prologue, then codes_per_byte and row-major packed
  // codes (byte c/cpb of row r, shifted (c%cpb)·bits). Decode with the old
  // geometry, then repack each code into the blocked layout — codes and
  // group parameters carry over exactly, so dequantized values are
  // bit-identical to what the v2 reader produced.
  QuantizedLinear q;
  q.spec_.bits = static_cast<int>(reader.read_u32());
  q.spec_.group_size = reader.read_u64();
  const std::uint32_t format_code = reader.read_u32();
  APTQ_CHECK(format_code <= static_cast<std::uint32_t>(QFormat::fp4_e2m1),
             "QuantizedLinear: unknown format code " +
                 std::to_string(format_code));
  q.spec_.format = static_cast<QFormat>(format_code);
  q.spec_.symmetric = reader.read_u32() != 0;
  q.spec_.mse_clip_search = reader.read_u32() != 0;
  q.spec_.validate();
  q.rows_ = reader.read_u64();
  q.cols_ = reader.read_u64();
  const std::uint64_t codes_per_byte = reader.read_u64();
  APTQ_CHECK(codes_per_byte >= 1 && codes_per_byte <= 8,
             "QuantizedLinear: corrupt codes_per_byte");
  const std::vector<std::uint8_t> v2_codes = reader.read_bytes();
  const std::size_t bytes_per_row =
      (q.cols_ + codes_per_byte - 1) / codes_per_byte;
  APTQ_CHECK(v2_codes.size() == q.rows_ * bytes_per_row,
             "QuantizedLinear: corrupt code block");
  const std::uint64_t n_params = reader.read_u64();
  APTQ_CHECK(n_params == q.rows_ * group_count(q.cols_, q.spec_),
             "QuantizedLinear: corrupt group parameters");
  q.group_params_.resize(n_params);
  for (auto& p : q.group_params_) {
    p.scale = reader.read_f32();
    p.zero_point = reader.read_i32();
  }
  // v2 stored whatever group_size the spec carried; normalize like the
  // constructor does (group count is unchanged by normalization).
  if (q.cols_ > 0 &&
      (q.spec_.group_size == 0 || q.spec_.group_size > q.cols_)) {
    q.spec_.group_size = q.cols_;
  }
  q.init_geometry();
  APTQ_CHECK(q.rows_ * q.groups_ == n_params,
             "QuantizedLinear: corrupt group parameters");
  const int v2_bits = static_cast<int>(8 / codes_per_byte);
  APTQ_CHECK(v2_bits == q.packed_bits_,
             "QuantizedLinear: codes_per_byte disagrees with bits");
  q.codes_.assign(q.rows_ * q.groups_ * q.bytes_per_group_, 0);
  for (std::size_t r = 0; r < q.rows_; ++r) {
    for (std::size_t c = 0; c < q.cols_; ++c) {
      const std::uint8_t byte = v2_codes[r * bytes_per_row + c / codes_per_byte];
      const int shift = static_cast<int>(c % codes_per_byte) * v2_bits;
      q.set_code(r, c, (byte >> shift) & ((1u << v2_bits) - 1u));
    }
  }
  q.finalize_dequant();
  return q;
}

QuantizedLinear QuantizedLinear::row_slice(std::size_t r0,
                                           std::size_t r1) const {
  APTQ_CHECK(r0 <= r1 && r1 <= rows_, "row_slice: range out of bounds");
  QuantizedLinear q;
  q.spec_ = spec_;
  q.rows_ = r1 - r0;
  q.cols_ = cols_;
  q.init_geometry();
  const std::size_t row_bytes = groups_ * bytes_per_group_;
  q.codes_.assign(codes_.begin() + static_cast<std::ptrdiff_t>(r0 * row_bytes),
                  codes_.begin() + static_cast<std::ptrdiff_t>(r1 * row_bytes));
  q.group_params_.assign(
      group_params_.begin() + static_cast<std::ptrdiff_t>(r0 * groups_),
      group_params_.begin() + static_cast<std::ptrdiff_t>(r1 * groups_));
  q.finalize_dequant();
  return q;
}

QuantizedLinear QuantizedLinear::row_concat(
    const std::vector<QuantizedLinear>& parts) {
  APTQ_CHECK(!parts.empty(), "row_concat: no parts");
  QuantizedLinear q;
  q.spec_ = parts.front().spec_;
  q.cols_ = parts.front().cols_;
  for (const QuantizedLinear& p : parts) {
    APTQ_CHECK(p.cols_ == q.cols_ && p.spec_.bits == q.spec_.bits &&
                   p.spec_.group_size == q.spec_.group_size &&
                   p.spec_.format == q.spec_.format &&
                   p.spec_.symmetric == q.spec_.symmetric &&
                   p.spec_.mse_clip_search == q.spec_.mse_clip_search,
               "row_concat: parts disagree on grid or width");
    q.rows_ += p.rows_;
  }
  q.init_geometry();
  q.codes_.reserve(q.rows_ * q.groups_ * q.bytes_per_group_);
  q.group_params_.reserve(q.rows_ * q.groups_);
  for (const QuantizedLinear& p : parts) {
    q.codes_.insert(q.codes_.end(), p.codes_.begin(), p.codes_.end());
    q.group_params_.insert(q.group_params_.end(), p.group_params_.begin(),
                           p.group_params_.end());
  }
  q.finalize_dequant();
  return q;
}

bool QuantizedLinear::operator==(const QuantizedLinear& other) const {
  return spec_.bits == other.spec_.bits &&
         spec_.group_size == other.spec_.group_size &&
         spec_.format == other.spec_.format &&
         spec_.symmetric == other.spec_.symmetric &&
         spec_.mse_clip_search == other.spec_.mse_clip_search &&
         rows_ == other.rows_ &&
         cols_ == other.cols_ && codes_ == other.codes_ &&
         group_params_.size() == other.group_params_.size() &&
         std::equal(group_params_.begin(), group_params_.end(),
                    other.group_params_.begin(),
                    [](const GroupParams& a, const GroupParams& b) {
                      return a.scale == b.scale &&
                             a.zero_point == b.zero_point;
                    });
}

}  // namespace aptq
