#include "quant/aptq.hpp"

#include <algorithm>
#include <cmath>

#include "model/backward.hpp"
#include "model/forward.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace aptq {

const LayerCalibration& CalibrationResult::by_name(
    const std::string& name) const {
  for (const auto& layer : layers) {
    if (layer.name == name) {
      return layer;
    }
  }
  APTQ_FAIL("CalibrationResult: no layer named " + name);
}

AttentionGammas attention_gammas(const Model& model, std::size_t block,
                                 const BlockCache& cache, std::size_t probes,
                                 Rng& rng) {
  APTQ_CHECK(probes >= 1, "attention_gammas: need at least one probe");
  const std::size_t t_len = cache.normed1.rows();
  const std::size_t d = model.config.dim;
  AttentionGammas g;
  g.q.assign(t_len, 0.0f);
  g.k.assign(t_len, 0.0f);
  g.v.assign(t_len, 0.0f);
  for (std::size_t p = 0; p < probes; ++p) {
    const Matrix seed = Matrix::randn(t_len, d, rng);
    const AttentionProbeGrads pg =
        attention_probe_backward(model, block, cache, seed);
    for (std::size_t t = 0; t < t_len; ++t) {
      g.q[t] += dot(pg.dq.row(t), pg.dq.row(t));
      g.k[t] += dot(pg.dk.row(t), pg.dk.row(t));
      g.v[t] += dot(pg.dv.row(t), pg.dv.row(t));
    }
  }
  // Normalize by probe count and seed dimensionality so that an identity
  // Jacobian yields γ = 1 (comparable to GPTQ's implicit γ ≡ 1).
  const float norm = 1.0f / (static_cast<float>(probes) *
                             static_cast<float>(d));
  for (std::size_t t = 0; t < t_len; ++t) {
    g.q[t] *= norm;
    g.k[t] *= norm;
    g.v[t] *= norm;
  }
  return g;
}

namespace {

// The input activation matrix feeding a given linear layer, read from the
// forward cache.
const Matrix& linear_input(const ForwardCache& cache, LinearKind kind,
                           std::size_t block) {
  switch (kind) {
    case LinearKind::q_proj:
    case LinearKind::k_proj:
    case LinearKind::v_proj:
      return cache.blocks[block].normed1;
    case LinearKind::o_proj:
      return cache.blocks[block].attn_cat;
    case LinearKind::gate_proj:
    case LinearKind::up_proj:
      return cache.blocks[block].normed2;
    case LinearKind::down_proj:
      return cache.blocks[block].act;
    case LinearKind::lm_head:
      return cache.normed_final;
  }
  APTQ_FAIL("linear_input: unknown kind");
}

struct LayerSlot {
  ConstLinearRef ref;
  HessianAccumulator acc;
  double gamma_sum = 0.0;
  std::size_t gamma_count = 0;
};

CalibrationResult collect_impl(const Model& model,
                               std::span<const TokenSeq> segments,
                               const CalibConfig& config,
                               long only_block) {
  APTQ_CHECK(!segments.empty(), "calibration: no segments");
  std::vector<LayerSlot> slots;
  for (const auto& ref : collect_linears(model, config.include_lm_head)) {
    if (only_block >= 0 && ref.kind != LinearKind::lm_head &&
        ref.block != static_cast<std::size_t>(only_block)) {
      continue;
    }
    if (only_block >= 0 && ref.kind == LinearKind::lm_head) {
      continue;
    }
    slots.push_back({ref, HessianAccumulator(ref.weight->rows()), 0.0, 0});
  }
  APTQ_CHECK(!slots.empty(), "calibration: no layers selected");

  ForwardCache cache;
  for (std::size_t si = 0; si < segments.size(); ++si) {
    obs::TraceSpan segment_span("calib.segment", "calib");
    const auto& segment = segments[si];
    {
      obs::TraceSpan forward_span("calib.forward", "calib");
      model_forward(model, segment, cache);
    }
    // γ per block (computed once, shared by that block's q/k/v slots). The
    // probe RNG is keyed to (seed, segment, block) so per-block collection
    // reproduces exactly the γ a full-model pass would produce — and so the
    // blocks' probe passes can run concurrently, each on its own stream.
    std::vector<AttentionGammas> gammas(model.config.n_layers);
    if (config.mode == HessianMode::aptq) {
      parallel_for(0, slots.size(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const auto& slot = slots[i];
          if (slot.ref.kind != LinearKind::q_proj) {
            continue;
          }
          obs::TraceSpan probe_span("calib.gamma_probe", "calib");
          Rng probe_rng(config.seed ^ (si * 1000003ull) ^
                        (slot.ref.block * 7919ull + 1));
          gammas[slot.ref.block] =
              attention_gammas(model, slot.ref.block,
                               cache.blocks[slot.ref.block],
                               config.probes, probe_rng);
        }
      });
    }
    // Per-layer Hessian accumulation: every slot owns its accumulator and
    // reads the shared forward cache, so the layer fan-out is embarrassingly
    // parallel and each layer's token order matches the serial path.
    parallel_for(0, slots.size(), 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        auto& slot = slots[i];
        const Matrix& x = linear_input(cache, slot.ref.kind, slot.ref.block);
        std::span<const float> gamma;
        if (config.mode == HessianMode::aptq) {
          const auto& bg = gammas[slot.ref.block];
          switch (slot.ref.kind) {
            case LinearKind::q_proj: gamma = bg.q; break;
            case LinearKind::k_proj: gamma = bg.k; break;
            case LinearKind::v_proj: gamma = bg.v; break;
            default: break;  // o_proj / FFN / lm_head: γ ≡ 1 (eq. 9)
          }
        }
        slot.acc.add_matrix(x, gamma);
        for (const float gv : gamma) {
          slot.gamma_sum += gv;
          ++slot.gamma_count;
        }
      }
    });
  }

  CalibrationResult result;
  result.layers.reserve(slots.size());
  for (auto& slot : slots) {
    LayerCalibration layer;
    layer.name = slot.ref.name;
    layer.kind = slot.ref.kind;
    layer.block = slot.ref.block;
    layer.hessian = slot.acc.finalized();
    layer.avg_trace = slot.acc.average_trace();
    layer.weight_count = slot.ref.weight->size();
    layer.gamma_mean = slot.gamma_count > 0
                           ? slot.gamma_sum /
                                 static_cast<double>(slot.gamma_count)
                           : 1.0;
    if (obs::telemetry_enabled()) {
      float diag_min = layer.hessian(0, 0);
      float diag_max = diag_min;
      for (std::size_t i = 1; i < layer.hessian.rows(); ++i) {
        const float v = layer.hessian(i, i);
        diag_min = std::min(diag_min, v);
        diag_max = std::max(diag_max, v);
      }
      obs::layer_stat(layer.name, "hessian.avg_trace", layer.avg_trace);
      obs::layer_stat(layer.name, "hessian.diag_min", diag_min);
      obs::layer_stat(layer.name, "hessian.diag_max", diag_max);
      obs::layer_stat(layer.name, "hessian.gamma_mean", layer.gamma_mean);
      obs::layer_stat(layer.name, "hessian.tokens",
                      static_cast<double>(slot.acc.tokens_seen()));
    }
    result.layers.push_back(std::move(layer));
  }
  return result;
}

}  // namespace

CalibrationResult collect_calibration(const Model& model,
                                      std::span<const TokenSeq> segments,
                                      const CalibConfig& config) {
  return collect_impl(model, segments, config, /*only_block=*/-1);
}

CalibrationResult collect_block_calibration(const Model& model,
                                            std::span<const TokenSeq> segments,
                                            std::size_t block,
                                            const CalibConfig& config) {
  APTQ_CHECK(block < model.config.n_layers,
             "collect_block_calibration: block out of range");
  return collect_impl(model, segments, config, static_cast<long>(block));
}

}  // namespace aptq
