#include "train/trainer.hpp"

#include <cmath>
#include <numbers>

#include "model/backward.hpp"
#include "model/forward.hpp"
#include "tensor/ops.hpp"
#include "train/loss.hpp"

namespace aptq {

float cosine_lr(std::size_t step, const TrainConfig& config) {
  if (step < config.warmup_steps) {
    return config.peak_lr * static_cast<float>(step + 1) /
           static_cast<float>(config.warmup_steps);
  }
  const double progress =
      static_cast<double>(step - config.warmup_steps) /
      static_cast<double>(std::max<std::size_t>(
          1, config.steps - config.warmup_steps));
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  const float floor_lr = config.peak_lr * config.final_lr_fraction;
  return floor_lr + (config.peak_lr - floor_lr) * static_cast<float>(cosine);
}

double train_model(
    Model& model, std::span<const Corpus* const> corpora,
    const TrainConfig& config,
    const std::function<void(const TrainProgress&)>& on_progress) {
  APTQ_CHECK(!corpora.empty(), "train_model: no corpora");
  APTQ_CHECK(config.batch_size >= 1 && config.seq_len >= 2,
             "train_model: bad batch configuration");

  Rng rng(config.seed);
  AdamWConfig opt_cfg;
  opt_cfg.lr = config.peak_lr;
  AdamW optimizer(opt_cfg);
  Gradients grads = Gradients::zeros_like(model);

  double running_loss = 0.0;
  bool running_init = false;
  ForwardCache cache;
  for (std::size_t step = 0; step < config.steps; ++step) {
    grads.set_zero();
    double batch_loss = 0.0;
    for (std::size_t b = 0; b < config.batch_size; ++b) {
      const Corpus& corpus = *corpora[rng.index(corpora.size())];
      const TokenSeq seq = corpus.sample_train_segment(config.seq_len, rng);
      const Matrix logits = model_forward(model, seq, cache);
      CrossEntropyResult ce = cross_entropy_next_token(logits, seq);
      batch_loss += ce.loss;
      // Average the gradient over the batch as it accumulates.
      scale(ce.grad_logits, 1.0f / static_cast<float>(config.batch_size));
      model_backward(model, seq, cache, ce.grad_logits, grads);
    }
    batch_loss /= static_cast<double>(config.batch_size);
    clip_grad_norm(grads, config.clip_norm);
    const float lr = cosine_lr(step, config);
    optimizer.step(model, grads, lr);

    running_loss = running_init ? 0.95 * running_loss + 0.05 * batch_loss
                                : batch_loss;
    running_init = true;
    if (config.log_every > 0 && on_progress &&
        (step % config.log_every == 0 || step + 1 == config.steps)) {
      on_progress({step, running_loss, lr});
    }
  }
  return running_loss;
}

double train_model(
    Model& model, const Corpus& corpus, const TrainConfig& config,
    const std::function<void(const TrainProgress&)>& on_progress) {
  const Corpus* ptr = &corpus;
  return train_model(model, std::span<const Corpus* const>(&ptr, 1), config,
                     on_progress);
}

}  // namespace aptq
