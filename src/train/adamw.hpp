// AdamW optimizer over the model's canonical parameter order.
#pragma once

#include "model/backward.hpp"
#include "model/model.hpp"

namespace aptq {

/// AdamW hyperparameters.
struct AdamWConfig {
  float lr = 3e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.95f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
};

/// Decoupled-weight-decay Adam. State is allocated lazily on the first step
/// and keyed to the model's parameter layout (visit_params order).
class AdamW {
 public:
  explicit AdamW(const AdamWConfig& config = {}) : config_(config) {}

  /// Apply one update with the given learning rate (overrides config lr for
  /// this step; schedules live in the caller).
  void step(Model& model, Gradients& grads, float lr);

  /// Step with the configured learning rate.
  void step(Model& model, Gradients& grads) { step(model, grads, config_.lr); }

  const AdamWConfig& config() const { return config_; }
  std::size_t steps_taken() const { return t_; }

 private:
  AdamWConfig config_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::size_t t_ = 0;
};

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
double clip_grad_norm(Gradients& grads, double max_norm);

}  // namespace aptq
