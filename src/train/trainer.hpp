// Pretraining loop producing the "pretrained" models the quantization
// experiments operate on, plus the QAT fine-tuner used by the LLM-QAT-sim
// baseline.
#pragma once

#include <functional>

#include "data/corpus.hpp"
#include "model/model.hpp"
#include "train/adamw.hpp"

namespace aptq {

/// Pretraining hyperparameters.
struct TrainConfig {
  std::size_t steps = 800;
  std::size_t batch_size = 8;
  std::size_t seq_len = 48;
  float peak_lr = 3e-3f;
  float final_lr_fraction = 0.1f;  ///< cosine decay floor as fraction of peak
  std::size_t warmup_steps = 40;
  double clip_norm = 1.0;
  std::uint64_t seed = 7;
  std::size_t log_every = 0;  ///< 0 disables progress callbacks
};

/// Per-step progress sample handed to the optional callback.
struct TrainProgress {
  std::size_t step = 0;
  double loss = 0.0;
  float lr = 0.0f;
};

/// Cosine learning-rate schedule with linear warmup.
float cosine_lr(std::size_t step, const TrainConfig& config);

/// Train `model` in place with next-token cross-entropy on segments drawn
/// from the given corpora (sampled uniformly across corpora). Returns the
/// final running loss.
double train_model(
    Model& model, std::span<const Corpus* const> corpora,
    const TrainConfig& config,
    const std::function<void(const TrainProgress&)>& on_progress = {});

/// Convenience: train on a single corpus.
double train_model(
    Model& model, const Corpus& corpus, const TrainConfig& config,
    const std::function<void(const TrainProgress&)>& on_progress = {});

}  // namespace aptq
