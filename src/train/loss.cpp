#include "train/loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace aptq {

CrossEntropyResult cross_entropy_next_token(const Matrix& logits,
                                            std::span<const TokenId> tokens,
                                            bool want_grad) {
  const std::size_t t_len = logits.rows();
  const std::size_t v = logits.cols();
  APTQ_CHECK(tokens.size() == t_len, "cross_entropy: token count mismatch");
  APTQ_CHECK(t_len >= 2, "cross_entropy: need at least two tokens");

  CrossEntropyResult result;
  result.count = t_len - 1;
  if (want_grad) {
    result.grad_logits.resize(t_len, v);
  }
  const float inv_count = 1.0f / static_cast<float>(result.count);

  double total = 0.0;
  std::vector<float> probs(v);
  for (std::size_t t = 0; t + 1 < t_len; ++t) {
    const TokenId target = tokens[t + 1];
    APTQ_CHECK(target >= 0 && static_cast<std::size_t>(target) < v,
               "cross_entropy: target out of range");
    const float* row = logits.data() + t * v;
    float max_v = row[0];
    for (std::size_t c = 1; c < v; ++c) {
      max_v = std::max(max_v, row[c]);
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < v; ++c) {
      probs[c] = std::exp(row[c] - max_v);
      sum += probs[c];
    }
    const float inv_sum = static_cast<float>(1.0 / sum);
    const std::size_t tgt = static_cast<std::size_t>(target);
    total -= std::log(std::max(static_cast<double>(probs[tgt]) / sum, 1e-30));
    if (want_grad) {
      float* g = result.grad_logits.data() + t * v;
      for (std::size_t c = 0; c < v; ++c) {
        g[c] = probs[c] * inv_sum * inv_count;
      }
      g[tgt] -= inv_count;
    }
  }
  result.loss = total / static_cast<double>(result.count);
  return result;
}

double sequence_nll(const Matrix& logits, std::span<const TokenId> tokens) {
  return cross_entropy_next_token(logits, tokens, /*want_grad=*/false).loss;
}

}  // namespace aptq
