// Next-token cross-entropy loss (forward + gradient) over model logits.
#pragma once

#include <span>

#include "data/vocab.hpp"
#include "tensor/matrix.hpp"

namespace aptq {

/// Result of a cross-entropy evaluation over one sequence.
struct CrossEntropyResult {
  double loss = 0.0;        ///< mean NLL in nats over scored positions
  std::size_t count = 0;    ///< scored positions (T-1)
  Matrix grad_logits;       ///< dL/dlogits (zero row at the last position)
};

/// Next-token cross-entropy: position t is scored against tokens[t+1].
/// The gradient is normalized by the number of scored positions.
/// `want_grad=false` skips gradient computation (evaluation only).
CrossEntropyResult cross_entropy_next_token(const Matrix& logits,
                                            std::span<const TokenId> tokens,
                                            bool want_grad = true);

/// Mean NLL in nats of `tokens` under `logits` (no gradient).
double sequence_nll(const Matrix& logits, std::span<const TokenId> tokens);

}  // namespace aptq
