#include "train/adamw.hpp"

#include <cmath>

namespace aptq {

void AdamW::step(Model& model, Gradients& grads, float lr) {
  // Gather parameter and gradient spans in the shared canonical order.
  std::vector<std::span<float>> params;
  visit_params(model, [&params](std::span<float> s) { params.push_back(s); });
  std::vector<std::span<float>> gspans;
  visit_params(grads, [&gspans](std::span<float> s) { gspans.push_back(s); });
  APTQ_CHECK(params.size() == gspans.size(),
             "AdamW: parameter/gradient group mismatch");

  std::size_t total = 0;
  for (const auto& p : params) {
    total += p.size();
  }
  if (m_.empty()) {
    m_.assign(total, 0.0f);
    v_.assign(total, 0.0f);
  }
  APTQ_CHECK(m_.size() == total, "AdamW: model layout changed mid-run");

  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  std::size_t offset = 0;
  for (std::size_t g = 0; g < params.size(); ++g) {
    auto p = params[g];
    auto gr = gspans[g];
    APTQ_CHECK(p.size() == gr.size(), "AdamW: span size mismatch");
    for (std::size_t i = 0; i < p.size(); ++i) {
      const std::size_t s = offset + i;
      m_[s] = config_.beta1 * m_[s] + (1.0f - config_.beta1) * gr[i];
      v_[s] = config_.beta2 * v_[s] + (1.0f - config_.beta2) * gr[i] * gr[i];
      const float m_hat = m_[s] / bc1;
      const float v_hat = v_[s] / bc2;
      p[i] -= lr * (m_hat / (std::sqrt(v_hat) + config_.eps) +
                    config_.weight_decay * p[i]);
    }
    offset += p.size();
  }
}

double clip_grad_norm(Gradients& grads, double max_norm) {
  const double norm = grads.l2_norm();
  if (norm > max_norm && norm > 0.0) {
    grads.scale_all(static_cast<float>(max_norm / norm));
  }
  return norm;
}

}  // namespace aptq
