// Sensitivity analysis: prints each layer's attention-aware average Hessian
// trace (the paper's §3.3 metric), its γ statistics, and the 2/4-bit
// allocation APTQ derives from them at several ratios — the "which layers
// matter" report a practitioner would consult before deploying.
#include <algorithm>
#include <cstdio>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "quant/mixed_precision.hpp"

using namespace aptq;

int main() {
  std::printf("== Layer sensitivity report (llama7b-sim, attention-aware "
              "Hessians) ==\n\n");
  auto corpora = make_standard_corpora();
  ModelZoo zoo;
  Model fp = zoo.get(llama7b_sim(), *corpora);

  const auto segments = sample_calibration_set(corpora->c4, 64, 48, 0x5E45);
  CalibConfig ccfg;
  const CalibrationResult calib = collect_calibration(fp, segments, ccfg);
  const auto ranking = rank_sensitivities(calib, fp);

  // Allocations at the ratios the paper reports.
  const auto a90 = allocate_by_sensitivity(ranking, 0.9);
  const auto a75 = allocate_by_sensitivity(ranking, 0.75);
  const auto a50 = allocate_by_sensitivity(ranking, 0.5);

  // Sort for display by descending sensitivity.
  std::vector<const LayerSensitivity*> order;
  for (const auto& s : ranking) {
    order.push_back(&s);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const LayerSensitivity* x, const LayerSensitivity* y) {
                     return x->sensitivity > y->sensitivity;
                   });

  std::printf("%-30s %12s %8s %8s  %s\n", "layer", "avg tr(H)/d", "gamma",
              "weights", "bits @ R=90/75/50%");
  for (const auto* s : order) {
    const auto& layer = calib.by_name(s->name);
    std::printf("%-30s %12.4f %8.3f %8zu  %d / %d / %d\n", s->name.c_str(),
                s->sensitivity, layer.gamma_mean, s->weight_count,
                a90.at(s->name), a75.at(s->name), a50.at(s->name));
  }

  std::printf("\nrealized average bits: R=90%%: %.2f  R=75%%: %.2f  "
              "R=50%%: %.2f (eq. 18 targets: 3.8 / 3.5 / 3.0)\n",
              average_bits(a90, ranking), average_bits(a75, ranking),
              average_bits(a50, ranking));

  // Aggregate view: which layer kinds are most sensitive?
  std::printf("\nmean sensitivity by projection kind:\n");
  for (const char* kind : {"q_proj", "k_proj", "v_proj", "o_proj",
                           "gate_proj", "up_proj", "down_proj"}) {
    double total = 0.0;
    int count = 0;
    for (const auto& s : ranking) {
      if (s.name.find(kind) != std::string::npos) {
        total += s.sensitivity;
        ++count;
      }
    }
    std::printf("  %-10s %.4f\n", kind, total / count);
  }
  return 0;
}
