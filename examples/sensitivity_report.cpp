// Sensitivity analysis: prints each layer's attention-aware average Hessian
// trace (the paper's §3.3 metric), its γ statistics, and the 2/4-bit
// allocation APTQ derives from them at several ratios — the "which layers
// matter" report a practitioner would consult before deploying.
//
// The table is driven by the quantization telemetry the calibration pass
// records (obs::layer_stats_snapshot), so this tool doubles as a smoke test
// of the telemetry layer; `--report FILE` writes the same data as a
// machine-readable run-report artifact.
//
//   sensitivity_report [--model 7b|13b] [--threads N] [--report FILE]
//                      [--trace-out FILE] [--log-level LVL]
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "obs/control.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "quant/mixed_precision.hpp"
#include "util/args.hpp"

using namespace aptq;

namespace {

// layer_stats_snapshot as name -> {key -> value} for keyed lookup.
std::map<std::string, std::map<std::string, double>> stats_by_layer() {
  std::map<std::string, std::map<std::string, double>> out;
  for (const auto& row : obs::layer_stats_snapshot()) {
    for (const auto& [key, value] : row.stats) {
      out[row.name][key] = value;
    }
  }
  return out;
}

int run(const ArgParser& args, obs::RunReport& report) {
  std::printf("== Layer sensitivity report (%s, attention-aware "
              "Hessians) ==\n\n",
              args.get_string("model", "7b") == "13b" ? "llama13b-sim"
                                                      : "llama7b-sim");
  auto corpora = make_standard_corpora();
  ModelZoo zoo;
  const ZooSpec spec =
      args.get_string("model", "7b") == "13b" ? llama13b_sim() : llama7b_sim();
  Model fp = zoo.get(spec, *corpora);
  report.add_config("model", spec.name);

  const auto segments = sample_calibration_set(corpora->c4, 64, 48, 0x5E45);
  CalibConfig ccfg;
  const CalibrationResult calib = collect_calibration(fp, segments, ccfg);
  const auto ranking = rank_sensitivities(calib, fp);

  // Allocations at the ratios the paper reports.
  const auto a90 = allocate_by_sensitivity(ranking, 0.9);
  const auto a75 = allocate_by_sensitivity(ranking, 0.75);
  const auto a50 = allocate_by_sensitivity(ranking, 0.5);

  // Sort for display by descending sensitivity.
  std::vector<const LayerSensitivity*> order;
  for (const auto& s : ranking) {
    order.push_back(&s);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const LayerSensitivity* x, const LayerSensitivity* y) {
                     return x->sensitivity > y->sensitivity;
                   });

  // The trace and γ columns come from the telemetry the calibration pass
  // recorded, not from re-deriving them here.
  const auto stats = stats_by_layer();
  std::printf("%-30s %12s %8s %8s  %s\n", "layer", "avg tr(H)/d", "gamma",
              "weights", "bits @ R=90/75/50%");
  for (const auto* s : order) {
    const auto& layer = stats.at(s->name);
    std::printf("%-30s %12.4f %8.3f %8zu  %d / %d / %d\n", s->name.c_str(),
                layer.at("alloc.sensitivity"), layer.at("hessian.gamma_mean"),
                s->weight_count, a90.at(s->name), a75.at(s->name),
                a50.at(s->name));
  }

  std::printf("\nrealized average bits: R=90%%: %.2f  R=75%%: %.2f  "
              "R=50%%: %.2f (eq. 18 targets: 3.8 / 3.5 / 3.0)\n",
              average_bits(a90, ranking), average_bits(a75, ranking),
              average_bits(a50, ranking));
  report.add_config("avg_bits.r90", average_bits(a90, ranking));
  report.add_config("avg_bits.r75", average_bits(a75, ranking));
  report.add_config("avg_bits.r50", average_bits(a50, ranking));

  // Aggregate view: which layer kinds are most sensitive?
  std::printf("\nmean sensitivity by projection kind:\n");
  for (const char* kind : {"q_proj", "k_proj", "v_proj", "o_proj",
                           "gate_proj", "up_proj", "down_proj"}) {
    double total = 0.0;
    int count = 0;
    for (const auto& s : ranking) {
      if (s.name.find(kind) != std::string::npos) {
        total += s.sensitivity;
        ++count;
      }
    }
    std::printf("  %-10s %.4f\n", kind, total / count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    configure_threads(args);
    const obs::ObsOptions obs_options = obs::configure_observability(args);
    // The layer table is built from telemetry, so recording must be on
    // even when no --report artifact was requested.
    obs::set_telemetry(true);
    obs::RunReport report;
    report.add_config("tool", std::string("sensitivity_report"));
    const int rc = run(args, report);
    obs::finalize_observability(obs_options, report);
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
