// Method comparison on a user-supplied bit budget: quantizes llama7b-sim
// with every implemented method near the requested average bit width and
// prints the accuracy/size frontier — the decision table a practitioner
// would build before picking a scheme.
//
// Usage: compare_methods [avg_bits]   (default 3.5; range 2..4)
#include <cstdio>
#include <cstdlib>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "eval/harness.hpp"
#include "eval/perplexity.hpp"
#include "eval/tasks.hpp"
#include "util/table.hpp"

using namespace aptq;

int main(int argc, char** argv) {
  double target_bits = 3.5;
  if (argc > 1) {
    target_bits = std::strtod(argv[1], nullptr);
  }
  if (target_bits < 2.0 || target_bits > 4.0) {
    std::fprintf(stderr, "avg_bits must be in [2, 4]\n");
    return 1;
  }
  std::printf("== Method comparison near %.1f average bits ==\n\n",
              target_bits);

  auto corpora = make_standard_corpora();
  ModelZoo zoo;
  const Model fp = zoo.get(llama7b_sim(), *corpora);
  const auto segments = corpora->c4.eval_segments(48, 64);
  TaskGenConfig tcfg;
  tcfg.n_items = 100;
  const auto suite = generate_task_suite(corpora->c4, tcfg);

  // eq. 18 inverted: R = (target − 2) / 2.
  const double ratio = (target_bits - 2.0) / 2.0;

  struct Row {
    Method method;
    PipelineConfig cfg;
  };
  std::vector<Row> rows;
  {
    PipelineConfig base;
    rows.push_back({Method::fp, base});
    PipelineConfig mixed = base;
    mixed.ratio_high = ratio;
    rows.push_back({ratio >= 1.0 ? Method::aptq : Method::aptq_mixed, mixed});
    rows.push_back({Method::blockwise_mixed, mixed});
    // Uniform-grid methods at the nearest integer width.
    PipelineConfig uniform = base;
    uniform.bits = static_cast<int>(target_bits + 0.5);
    rows.push_back({Method::gptq, uniform});
    rows.push_back({Method::rtn, uniform});
    rows.push_back({Method::owq, uniform});
    // PB-LLM at the salient fraction whose avg bits ≈ target:
    // 16ρ + (1−ρ) = target → ρ = (target − 1)/15.
    PipelineConfig pb = base;
    pb.pbllm_salient_fraction = (target_bits - 1.0) / 15.0;
    rows.push_back({Method::pbllm, pb});
  }

  const double fp_ppl = evaluate_perplexity(fp, segments).perplexity;
  TextTable table({"Method", "Avg bit", "C4Sim ppl", "ppl vs FP",
                   "zero-shot mean%"});
  for (const auto& row : rows) {
    const QuantizedModel qm =
        quantize_model(fp, corpora->c4, row.method, row.cfg);
    const double ppl =
        evaluate_perplexity(qm.model, segments, qm.forward_options)
            .perplexity;
    const ZeroShotReport zs =
        evaluate_zero_shot(qm.model, suite, qm.forward_options);
    table.add_row({qm.method, fmt_fixed(qm.average_bits(), 2),
                   fmt_fixed(ppl, 3),
                   (ppl >= fp_ppl ? "+" : "") +
                       fmt_percent(ppl / fp_ppl - 1.0, 1),
                   fmt_fixed(100.0 * zs.mean_accuracy, 1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  return 0;
}
