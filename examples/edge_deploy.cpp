// Edge deployment scenario (the paper's motivating use case): given a
// device memory budget for weights, pick the largest 4-bit ratio R whose
// packed model fits, quantize at that ratio, and report the
// accuracy/memory trade-off actually achieved.
//
// Usage: edge_deploy [budget_bytes]   (default: 60% of the 4-bit size)
#include <cstdio>
#include <cstdlib>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "eval/perplexity.hpp"
#include "quant/packed_model.hpp"

using namespace aptq;

int main(int argc, char** argv) {
  std::printf("== Edge deployment: fit llama7b-sim into a weight-memory "
              "budget ==\n\n");
  auto corpora = make_standard_corpora();
  ModelZoo zoo;
  const Model fp = zoo.get(llama7b_sim(), *corpora);

  // Establish the memory envelope: 4-bit (R=1) is the ceiling, 2-bit (R=0)
  // the floor.
  PipelineConfig cfg;
  const QuantizedModel all4 =
      quantize_model(fp, corpora->c4, Method::aptq, cfg);
  const std::size_t ceiling = all4.packed_bytes();
  // Default budget sits between the 2-bit floor and the 4-bit ceiling so
  // the search has a real decision to make (group-parameter overhead keeps
  // the floor around ~70% of the ceiling at group size 16).
  std::size_t budget = ceiling * 85 / 100;
  if (argc > 1) {
    budget = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  }
  std::printf("fp32 weights: %zu bytes; 4-bit packed: %zu bytes; "
              "budget: %zu bytes\n\n",
              fp.parameter_count() * sizeof(float), ceiling, budget);

  // Search the ratio grid from the top for the largest model that fits.
  const auto segments = corpora->c4.eval_segments(48, 64);
  const double fp_ppl = evaluate_perplexity(fp, segments).perplexity;
  std::printf("%-10s %-12s %-12s %s\n", "R(4-bit)", "packed B", "fits",
              "C4Sim ppl");
  bool deployed = false;
  for (const double r : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.0}) {
    PipelineConfig c = cfg;
    c.ratio_high = r;
    const Method m = r >= 1.0 ? Method::aptq : Method::aptq_mixed;
    const QuantizedModel qm = quantize_model(fp, corpora->c4, m, c);
    const bool fits = qm.packed_bytes() <= budget;
    const double ppl =
        evaluate_perplexity(qm.model, segments, qm.forward_options)
            .perplexity;
    std::printf("%-10.2f %-12zu %-12s %.3f%s\n", r, qm.packed_bytes(),
                fits ? "yes" : "no", ppl,
                fits && !deployed ? "   <-- deploy this" : "");
    if (fits && !deployed) {
      deployed = true;
      std::printf("\n  selected %s: %.2f avg bits, %.1f%% of fp32 size, "
                  "ppl +%.2f%% over FP\n",
                  qm.method.c_str(), qm.average_bits(),
                  100.0 * static_cast<double>(qm.packed_bytes()) /
                      static_cast<double>(fp.parameter_count() *
                                          sizeof(float)),
                  100.0 * (ppl / fp_ppl - 1.0));
      // On-device generation: sample straight from the packed artifact via
      // the KV-cache engine (per-token steps hit the packed GEMV kernel).
      const PackedModel packed = PackedModel::pack(qm, c.group_size);
      Rng gen_rng(7);
      SampleConfig scfg;
      scfg.temperature = 0.8f;
      scfg.top_k = 8;
      const TokenSeq sample = sample_from_packed(packed, 24, gen_rng, scfg);
      std::printf("  sample from the packed model (KV-cached decode):");
      for (const TokenId t : sample) {
        std::printf(" %d", t);
      }
      std::printf("\n\n");
    }
  }
  if (!deployed) {
    std::printf("\nno configuration fits the budget — budget below the "
                "2-bit floor.\n");
  }
  return 0;
}
