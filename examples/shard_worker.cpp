// Tensor-parallel worker process: listens on one TCP port, serves shard
// sessions for a root (examples/shard_serve.cpp or any ShardedModel). The
// worker is model-agnostic — everything it needs (its weight slice
// included) arrives over the wire in the load_shard frame, so the same
// binary serves dense and packed roots of any configuration.
//
// Usage: shard_worker [--port P] [--host H] [--threads N] [--sessions N]
//                     [--log-level error|warn|info|debug]
//   --port 0 (the default) binds an ephemeral port; the bound address is
//   printed either way, so scripts can scrape it. --sessions N serves N
//   root sessions then exits (default 1, the CI smoke shape); 0 loops
//   forever. Session lifecycle goes through the leveled logger; once a
//   session's hello assigns a rank, the worker loop prefixes its own
//   lines with `[worker N]`.
#include <cstdio>

#include "net/socket.hpp"
#include "net/worker.hpp"
#include "obs/log.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace aptq;
  try {
    const ArgParser args(argc, argv);
    configure_threads(args);
    obs::set_log_level(obs::parse_log_level(args.log_level()));
    const auto port = static_cast<std::uint16_t>(args.get_long("port", 0));
    const std::string host = args.get_string("host", "127.0.0.1");
    const long sessions = args.get_long("sessions", 1);

    net::Listener listener(port, host);
    // Kept as a raw printf: scripts scrape this line for the bound port.
    std::printf("shard_worker listening on %s:%u\n", host.c_str(),
                static_cast<unsigned>(listener.port()));
    std::fflush(stdout);

    for (long served = 0; sessions == 0 || served < sessions; ++served) {
      net::Socket conn = listener.accept();
      obs::log_info("shard_worker: session from " + conn.name());
      net::serve_worker(conn);
      obs::log_info("shard_worker: session complete");
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "shard_worker: %s\n", e.what());
    return 1;
  }
}
