// aptq_cli — command-line driver over the library's public API.
//
//   aptq_cli quantize  --model 7b --method aptq-mixed --ratio 0.75
//                      [--bits 4] [--group 16] [--out model.aptq]
//   aptq_cli eval      --model 7b --method gptq [--ratio R] [--bits N]
//   aptq_cli zeroshot  --model 7b --method aptq [--items 200]
//   aptq_cli sensitivity --model 7b
//   aptq_cli drift     --model 7b --method aptq-mixed --ratio 0.5
//   aptq_cli generate  --model 7b [--packed model.aptq] [--length 48]
//                      [--temp 0.8]
//
// Models: "7b" (llama7b-sim) or "13b" (llama13b-sim); trained on first use
// and cached under .cache/aptq (override with APTQ_CACHE_DIR).
#include <cstdio>
#include <map>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "eval/harness.hpp"
#include "eval/perplexity.hpp"
#include "eval/tasks.hpp"
#include "model/decoder.hpp"
#include "obs/log.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "quant/diagnostics.hpp"
#include "quant/mixed_precision.hpp"
#include "quant/packed_model.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

using namespace aptq;

namespace {

const std::map<std::string, Method>& method_table() {
  static const std::map<std::string, Method> table = {
      {"fp", Method::fp},
      {"rtn", Method::rtn},
      {"gptq", Method::gptq},
      {"owq", Method::owq},
      {"smoothquant", Method::smoothquant},
      {"fpq", Method::fpq},
      {"awq", Method::awq},
      {"llm-qat", Method::llm_qat},
      {"pbllm", Method::pbllm},
      {"aptq", Method::aptq},
      {"aptq-mixed", Method::aptq_mixed},
      {"blockwise", Method::blockwise_mixed},
      {"aptq-knapsack", Method::aptq_knapsack},
  };
  return table;
}

Method parse_method(const std::string& name) {
  const auto it = method_table().find(name);
  if (it == method_table().end()) {
    std::string known;
    for (const auto& [k, _] : method_table()) {
      known += k + " ";
    }
    APTQ_FAIL("unknown method '" + name + "'; known: " + known);
  }
  return it->second;
}

ZooSpec parse_model(const std::string& name) {
  if (name == "7b") {
    return llama7b_sim();
  }
  if (name == "13b") {
    return llama13b_sim();
  }
  APTQ_FAIL("unknown model '" + name + "' (use 7b or 13b)");
}

PipelineConfig config_from_args(const ArgParser& args) {
  PipelineConfig cfg;
  cfg.bits = static_cast<int>(args.get_long("bits", cfg.bits));
  cfg.group_size =
      static_cast<std::size_t>(args.get_long("group",
                                             static_cast<long>(cfg.group_size)));
  cfg.ratio_high = args.get_double("ratio", cfg.ratio_high);
  cfg.calib_segments = static_cast<std::size_t>(
      args.get_long("calib", static_cast<long>(cfg.calib_segments)));
  cfg.pbllm_salient_fraction =
      args.get_double("salient", cfg.pbllm_salient_fraction);
  cfg.mse_clip_search = args.get_long("clip-search", 0) != 0;
  return cfg;
}

int usage() {
  std::printf(
      "usage: aptq_cli <quantize|eval|zeroshot|sensitivity|drift|generate> "
      "[--model 7b|13b] [--method NAME] [--ratio R] [--bits N] "
      "[--group G] [--out FILE] [--packed FILE] [--items N] "
      "[--length N] [--temp T] [--threads N] "
      "[--trace-out FILE] [--report FILE] "
      "[--log-level error|warn|info|debug]\n");
  return 2;
}

// The subcommand dispatch, factored out of main so the observability
// artifacts are finalized on every successful exit path.
int run_cli(const ArgParser& args, obs::RunReport& report) {
    auto corpora = make_standard_corpora();
    ModelZoo zoo;

    if (args.command() == "generate" && args.has("packed")) {
      const PackedModel pm =
          PackedModel::load(args.get_string("packed", ""));
      const Model m = pm.unpack();
      Rng rng(static_cast<std::uint64_t>(args.get_long("seed", 1)));
      const TokenSeq seq = decode_sample(
          m, static_cast<std::size_t>(args.get_long("length", 48)), rng,
          static_cast<float>(args.get_double("temp", 1.0)));
      for (const TokenId t : seq) {
        std::printf("%d ", t);
      }
      std::printf("\n");
      return 0;
    }

    const ZooSpec spec = parse_model(args.get_string("model", "7b"));
    const Model fp = zoo.get(spec, *corpora);
    const PipelineConfig cfg = config_from_args(args);
    report.add_config("model", spec.name);
    report.add_config("bits", static_cast<long>(cfg.bits));
    report.add_config("group_size", static_cast<long>(cfg.group_size));
    report.add_config("ratio_high", cfg.ratio_high);
    report.add_config("threads",
                      static_cast<long>(ThreadPool::global_thread_count()));

    if (args.command() == "quantize" || args.command() == "eval") {
      const Method method = parse_method(args.get_string("method", "aptq"));
      const QuantizedModel qm =
          quantize_model(fp, corpora->c4, method, cfg);
      report.add_config("method", qm.method);
      report.add_config("avg_bits", qm.average_bits());
      std::printf("%s on %s: avg %.2f bits, packed %zu bytes\n",
                  qm.method.c_str(), spec.name.c_str(), qm.average_bits(),
                  qm.packed_bytes());
      const auto c4 = corpora->c4.eval_segments(48, 96);
      const auto wiki = corpora->wiki.eval_segments(48, 96);
      const PerplexityResult c4_res =
          evaluate_perplexity(qm.model, c4, qm.forward_options);
      const PerplexityResult wiki_res =
          evaluate_perplexity(qm.model, wiki, qm.forward_options);
      report.add_eval("C4Sim", c4_res.perplexity, c4_res.nll, c4_res.tokens);
      report.add_eval("WikiSim", wiki_res.perplexity, wiki_res.nll,
                      wiki_res.tokens);
      std::printf("perplexity: C4Sim %.3f  WikiSim %.3f\n",
                  c4_res.perplexity, wiki_res.perplexity);
      if (args.has("out")) {
        const std::string out = args.get_string("out", "");
        PackedModel::pack(qm, cfg.group_size).save(out);
        std::printf("packed artifact written to %s\n", out.c_str());
      }
      return 0;
    }

    if (args.command() == "zeroshot") {
      const Method method = parse_method(args.get_string("method", "aptq"));
      const QuantizedModel qm =
          quantize_model(fp, corpora->c4, method, cfg);
      TaskGenConfig tcfg;
      tcfg.n_items =
          static_cast<std::size_t>(args.get_long("items", 200));
      const auto suite = generate_task_suite(corpora->c4, tcfg);
      report.add_config("method", qm.method);
      const ZeroShotReport zs =
          evaluate_zero_shot(qm.model, suite, qm.forward_options);
      report.add_config("zeroshot.mean_accuracy", zs.mean_accuracy);
      TextTable table({"task", "accuracy"});
      for (const auto& t : zs.tasks) {
        table.add_row({t.task, fmt_percent(t.accuracy, 1)});
      }
      table.add_row({"mean", fmt_percent(zs.mean_accuracy, 2)});
      std::printf("%s\n", table.render().c_str());
      return 0;
    }

    if (args.command() == "sensitivity") {
      const auto segments = sample_calibration_set(
          corpora->c4, cfg.calib_segments, cfg.calib_seq_len,
          cfg.calib_seed);
      CalibConfig ccfg;
      const CalibrationResult calib =
          collect_calibration(fp, segments, ccfg);
      const auto ranking = rank_sensitivities(calib, fp);
      TextTable table({"layer", "avg trace", "weights"});
      for (const auto& s : ranking) {
        table.add_row({s.name, fmt_fixed(s.sensitivity, 4),
                       std::to_string(s.weight_count)});
      }
      std::printf("%s\n", table.render().c_str());
      return 0;
    }

    if (args.command() == "drift") {
      const Method method =
          parse_method(args.get_string("method", "aptq-mixed"));
      const QuantizedModel qm =
          quantize_model(fp, corpora->c4, method, cfg);
      report.add_config("method", qm.method);
      const auto segs = corpora->c4.eval_segments(48, 16);
      std::printf("%s drift vs FP on %s:\n%s\n", qm.method.c_str(),
                  spec.name.c_str(),
                  render_drift_report(
                      compare_models(fp, qm.model, segs)).c_str());
      return 0;
    }

    if (args.command() == "generate") {
      Rng rng(static_cast<std::uint64_t>(args.get_long("seed", 1)));
      const TokenSeq seq = decode_sample(
          fp, static_cast<std::size_t>(args.get_long("length", 48)), rng,
          static_cast<float>(args.get_double("temp", 1.0)));
      for (const TokenId t : seq) {
        std::printf("%d ", t);
      }
      std::printf("\n");
      return 0;
    }

    return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.command().empty()) {
      return usage();
    }
    // --threads N (default: hardware concurrency; 1 = fully serial). All
    // results are bitwise identical at any thread count.
    configure_threads(args);
    // --log-level / --trace-out / --report. Tracing and telemetry stay off
    // unless their output file is requested, so the default run pays only
    // the disabled-check loads.
    const obs::ObsOptions obs_options = obs::configure_observability(args);
    obs::RunReport report;
    report.add_config("tool", std::string("aptq_cli"));
    report.add_config("command", args.command());
    const int rc = run_cli(args, report);
    obs::finalize_observability(obs_options, report);
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
