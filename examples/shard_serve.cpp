// Tensor-parallel serving root: connects to shard workers
// (examples/shard_worker.cpp), splits a model across them, and drives the
// continuous-batching ServeEngine over the sharded decode path — every
// projection fans out over TCP and gathers output slices, byte-identical
// to solo decode (docs/SHARDING.md).
//
// Usage:
//   shard_serve --workers 127.0.0.1:9101,127.0.0.1:9102
//               [--model dense|packed] [--requests N] [--threads N]
//               [--selftest 1] [--http-port P] [--http-max-requests N]
//               [--trace-out FILE] [--report FILE] [--log-level LVL]
//
// Default mode submits a synthetic burst and prints per-request results
// plus the per-worker weight bytes. --selftest 1 additionally replays the
// same burst on a solo in-process engine and exits non-zero unless every
// token stream matches exactly (the CI shard-smoke gate). --http-port
// starts the HTTP front-end on the sharded engine instead (GET /healthz,
// /metrics, /statz; POST /v1/generate) with telemetry enabled so the live
// endpoints have data. --trace-out writes ONE merged Chrome trace: root
// spans plus every worker's recv/compute/send lane, collected over the
// wire at session end (docs/OBSERVABILITY.md).
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "net/sharded_model.hpp"
#include "net/socket.hpp"
#include "obs/control.hpp"
#include "obs/log.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "quant/packed_model.hpp"
#include "serve/engine.hpp"
#include "util/args.hpp"

using namespace aptq;
using namespace aptq::serve;

namespace {

ModelConfig demo_config() {
  ModelConfig c;  // the sim-scale defaults: v=64 d=48 L=4 h=4 ffn=128
  return c;
}

std::vector<std::pair<std::string, std::uint16_t>> parse_workers(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::uint16_t>> out;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string entry = spec.substr(at, comma - at);
    const std::size_t colon = entry.rfind(':');
    APTQ_CHECK(colon != std::string::npos && colon > 0,
               "shard_serve: worker \"" + entry + "\" is not host:port");
    out.emplace_back(entry.substr(0, colon),
                     static_cast<std::uint16_t>(
                         std::stoul(entry.substr(colon + 1))));
    at = comma + 1;
  }
  APTQ_CHECK(!out.empty(), "shard_serve: --workers list is empty");
  return out;
}

/// Connect with retries so the root may start before its workers listen.
std::vector<std::unique_ptr<net::Stream>> connect_workers(
    const std::vector<std::pair<std::string, std::uint16_t>>& endpoints) {
  std::vector<std::unique_ptr<net::Stream>> streams;
  for (const auto& [host, port] : endpoints) {
    std::unique_ptr<net::Socket> sock;
    for (int attempt = 0; sock == nullptr; ++attempt) {
      try {
        sock = std::make_unique<net::Socket>(net::Socket::connect(host, port));
      } catch (const Error&) {
        APTQ_CHECK(attempt < 50, "shard_serve: cannot reach " + host + ":" +
                                     std::to_string(port));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    std::printf("shard_serve: connected to %s\n", sock->name().c_str());
    streams.push_back(std::move(sock));
  }
  return streams;
}

std::vector<Request> make_burst(std::size_t n, std::size_t vocab) {
  std::vector<Request> reqs;
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.prompt.resize(3 + rng.index(6));
    for (auto& t : r.prompt) {
      t = static_cast<TokenId>(rng.index(vocab));
    }
    r.max_new_tokens = 6 + rng.index(7);
    r.sampling.temperature = 0.7f + 0.1f * static_cast<float>(i % 3);
    r.sampling.top_k = (i % 2 == 0) ? 0 : 8;
    r.seed = 1000 + i;
    reqs.push_back(r);
  }
  return reqs;
}

std::vector<GenerationResult> run_burst(ServeEngine& engine,
                                        const std::vector<Request>& burst) {
  for (const Request& r : burst) {
    engine.submit(r);
  }
  return engine.run();
}

/// JSON fragment for /statz: per-worker link stats (RTT from the hello
/// round trip, estimated clock offset, bytes each way, projection count).
std::string workers_statz(const net::ShardedModel& sharded) {
  std::string out = "\"workers\": [";
  const auto& links = sharded.link_stats();
  for (std::size_t w = 0; w < links.size(); ++w) {
    const net::LinkStats& link = links[w];
    if (w != 0) {
      out += ", ";
    }
    out += "{\"rtt_ns\": " + std::to_string(link.rtt_ns) +
           ", \"clock_offset_ns\": " + std::to_string(link.clock_offset_ns) +
           ", \"bytes_sent\": " + std::to_string(link.bytes_sent) +
           ", \"bytes_recv\": " + std::to_string(link.bytes_recv) +
           ", \"projections\": " + std::to_string(link.projections) + "}";
  }
  out += "]";
  return out;
}

/// Writes the merged trace (root spans + per-worker lanes gathered by
/// shutdown()) and the run report. Call AFTER sharded.shutdown() — that
/// is when the worker span buffers arrive over the wire.
void finalize_sharded(const obs::ObsOptions& obs_options,
                      const net::ShardedModel& sharded, ServeEngine& engine) {
  if (!obs_options.trace_path.empty()) {
    obs::write_trace(obs_options.trace_path, sharded.remote_trace());
    obs::log_info("wrote merged trace: " + obs_options.trace_path + " (" +
                  std::to_string(sharded.remote_trace().size()) +
                  " worker lanes; open at ui.perfetto.dev)");
  }
  if (!obs_options.report_path.empty()) {
    obs::RunReport report;
    report.add_config("tool", std::string("shard_serve"));
    report.add_config("workers", static_cast<long>(sharded.n_workers()));
    engine.fill_report(report);
    obs::write_run_report(report, obs_options.report_path);
    obs::log_info("wrote run report: " + obs_options.report_path);
  }
}

template <typename ModelT>
int serve_sharded(const ModelT& model,
                  std::vector<std::unique_ptr<net::Stream>> streams,
                  const ArgParser& args, const obs::ObsOptions& obs_options) {
  const std::size_t n_requests =
      static_cast<std::size_t>(args.get_long("requests", 8));
  net::ShardedModel sharded(model, std::move(streams));
  std::printf("shard_serve: %zu workers, per-worker weight bytes:",
              sharded.n_workers());
  for (const std::uint64_t b : sharded.worker_weight_bytes()) {
    std::printf(" %llu", static_cast<unsigned long long>(b));
  }
  std::printf("\n");

  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_context = 96;

  if (args.has("http-port")) {
    // Telemetry on so /metrics and /statz have serve.* data to show.
    obs::set_telemetry(true);
    ServeEngine engine(net::make_backend(sharded), cfg);
    const auto port =
        static_cast<std::uint16_t>(args.get_long("http-port", 0));
    net::Listener listener(port);
    net::HttpOptions options;
    options.max_requests = static_cast<std::size_t>(
        args.get_long("http-max-requests", 0));
    options.statz_extra = [&sharded] { return workers_statz(sharded); };
    std::printf("shard_serve: HTTP on 127.0.0.1:%u (GET /healthz /metrics "
                "/statz, POST /v1/generate)\n",
                static_cast<unsigned>(listener.port()));
    std::fflush(stdout);
    serve_http(listener, engine, options);
    sharded.shutdown();
    finalize_sharded(obs_options, sharded, engine);
    return 0;
  }

  const std::vector<Request> burst =
      make_burst(n_requests, sharded.config().vocab_size);
  ServeEngine engine(net::make_backend(sharded), cfg);
  const auto results = run_burst(engine, burst);
  std::printf("%4s %7s %7s  %s\n", "id", "prompt", "tokens", "finish");
  for (const auto& r : results) {
    std::printf("%4llu %7zu %7zu  %s\n",
                static_cast<unsigned long long>(r.id), r.prompt_tokens,
                r.tokens.size(), to_string(r.finish));
  }
  std::printf("shard_serve: %.0f tokens/sec over %zu workers\n",
              engine.stats().tokens_per_sec(), sharded.n_workers());
  sharded.shutdown();
  finalize_sharded(obs_options, sharded, engine);

  if (args.get_long("selftest", 0) == 0) {
    return 0;
  }
  // Replay the identical burst on a solo in-process engine: the sharded
  // token streams must match byte for byte.
  ServeEngine solo(make_backend(model), cfg);
  const auto reference = run_burst(solo, burst);
  if (reference.size() != results.size()) {
    std::fprintf(stderr, "selftest FAIL: result count mismatch\n");
    return 1;
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i].tokens != results[i].tokens ||
        reference[i].finish != results[i].finish) {
      std::fprintf(stderr, "selftest FAIL: request %zu diverged\n", i);
      return 1;
    }
  }
  std::printf("selftest PASS: %zu token streams identical to solo decode\n",
              reference.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    configure_threads(args);
    // --log-level / --trace-out / --report. With --trace-out set, every
    // broadcast carries a trace context and the workers' span buffers are
    // merged into one Chrome trace at shutdown.
    const obs::ObsOptions obs_options = obs::configure_observability(args);
    const auto endpoints = parse_workers(args.get_string("workers", ""));
    const std::string kind = args.get_string("model", "packed");
    // --selftest / --http-port consume their flags in serve_sharded.
    auto streams = connect_workers(endpoints);

    const Model dense = Model::init(demo_config(), 42);
    if (kind == "dense") {
      return serve_sharded(dense, std::move(streams), args, obs_options);
    }
    APTQ_CHECK(kind == "packed",
               "shard_serve: --model must be dense or packed");
    QuantSpec spec;
    spec.bits = 4;
    spec.group_size = 16;
    const PackedModel packed = PackedModel::pack_uniform(dense, spec);
    return serve_sharded(packed, std::move(streams), args, obs_options);
  } catch (const aptq::Error& e) {
    std::fprintf(stderr, "shard_serve: %s\n", e.what());
    return 1;
  }
}
