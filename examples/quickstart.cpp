// Quickstart: train a small LLaMA-style model, quantize it with APTQ at an
// average of 3 bits (50% 4-bit / 50% 2-bit), and compare perplexity and a
// generated sample against the full-precision model.
//
// Run from the repository root:  ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "core/model_zoo.hpp"
#include "core/pipeline.hpp"
#include "eval/perplexity.hpp"
#include "model/sampler.hpp"

using namespace aptq;

int main() {
  std::printf("== APTQ quickstart ==\n\n");

  // 1. Data: a synthetic "C4-like" corpus (multi-topic Markov source).
  auto corpora = make_standard_corpora();
  std::printf("corpus: %s, %zu train tokens, entropy floor ppl %.2f\n",
              corpora->c4.name().c_str(), corpora->c4.train_tokens().size(),
              std::exp(corpora->c4.oracle_eval_nll()));

  // 2. Model: the pretrained llama7b-sim from the zoo (trains on first run,
  //    loads from .cache/aptq afterwards).
  ModelZoo zoo;
  const Model fp = zoo.get(llama7b_sim(), *corpora);
  std::printf("model: %zu parameters, %zu blocks, d=%zu\n\n",
              fp.parameter_count(), fp.config.n_layers, fp.config.dim);

  // 3. Quantize: APTQ mixed 2/4-bit at R = 50% (average 3 bits).
  PipelineConfig cfg;
  cfg.ratio_high = 0.5;
  const QuantizedModel qm =
      quantize_model(fp, corpora->c4, Method::aptq_mixed, cfg);
  std::printf("quantized with %s: average %.2f bits, packed %zu bytes "
              "(fp32 would be %zu bytes)\n",
              qm.method.c_str(), qm.average_bits(), qm.packed_bytes(),
              fp.parameter_count() * sizeof(float));

  // 4. Evaluate: held-out perplexity, FP vs quantized.
  const auto segments = corpora->c4.eval_segments(48, 64);
  const auto fp_ppl = evaluate_perplexity(fp, segments);
  const auto q_ppl =
      evaluate_perplexity(qm.model, segments, qm.forward_options);
  std::printf("\nperplexity on held-out C4Sim:\n");
  std::printf("  FP32          : %.3f\n", fp_ppl.perplexity);
  std::printf("  %-14s: %.3f (+%.1f%%)\n", qm.method.c_str(),
              q_ppl.perplexity,
              100.0 * (q_ppl.perplexity / fp_ppl.perplexity - 1.0));

  // 5. Generate a few tokens from each to see they behave alike.
  Rng rng(7);
  const TokenSeq prompt = {5, 12};
  const TokenSeq a = sample_from_model(fp, 18, rng, {}, prompt);
  rng.reseed(7);
  const TokenSeq b = sample_from_model(qm.model, 18, rng, {}, prompt);
  const auto show = [](const char* tag, const TokenSeq& seq) {
    std::printf("  %s:", tag);
    for (const TokenId t : seq) {
      std::printf(" %2d", t);
    }
    std::printf("\n");
  };
  std::printf("\nsamples (same seed, prompt [5 12]):\n");
  show("FP32 ", a);
  show("APTQ ", b);
  return 0;
}
