// Continuous-batching serving demo: synthetic traffic against llama7b-sim,
// served dense and bit-packed through the same ServeEngine. A mixed burst
// of requests (varying prompt lengths, budgets, priorities, temperatures,
// seeds) is submitted up front plus a second wave mid-flight; the engine
// folds new prefills into in-flight decode steps and every request's
// stream stays byte-identical to a solo decode.
//
// Usage: serve_demo [--requests N] [--batch N] [--threads N]
//                   [--log-level LVL] [--trace-out FILE] [--report FILE]
// With --report, the run report carries a "serving" section with both
// engines' aggregates (see docs/SERVING.md).
#include <cstdio>
#include <vector>

#include "core/model_zoo.hpp"
#include "obs/report.hpp"
#include "quant/packed_model.hpp"
#include "serve/engine.hpp"
#include "util/args.hpp"

using namespace aptq;
using namespace aptq::serve;

namespace {

// Synthetic traffic: prompts cut from the corpus at varying lengths, with
// per-request sampling params, priorities, and seeds.
std::vector<Request> make_traffic(const Corpus& corpus, std::size_t n,
                                  std::size_t vocab) {
  const TokenSeq& text = corpus.train_tokens();
  std::vector<Request> reqs;
  Rng rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    const std::size_t len = 4 + rng.index(21);
    const std::size_t start = rng.index(text.size() - len);
    r.prompt.assign(text.begin() + start, text.begin() + start + len);
    r.max_new_tokens = 8 + rng.index(17);
    r.sampling.temperature = 0.7f + 0.1f * static_cast<float>(i % 4);
    r.sampling.top_k = (i % 3 == 0) ? 0 : 12;
    r.seed = 400 + i;
    r.priority = static_cast<int>(rng.index(3));
    if (i % 4 == 1) {
      r.eos_token = static_cast<TokenId>(rng.index(vocab));
    }
    reqs.push_back(r);
  }
  return reqs;
}

void serve_wave(ServeEngine& engine, const std::vector<Request>& traffic) {
  // First wave up front, second wave arrives while decoding is underway —
  // the scheduler folds their prefills into in-flight steps.
  const std::size_t first = traffic.size() / 2;
  for (std::size_t i = 0; i < first; ++i) {
    engine.submit(traffic[i]);
  }
  engine.step();
  engine.step();
  for (std::size_t i = first; i < traffic.size(); ++i) {
    engine.submit(traffic[i]);
  }
}

void print_results(const char* label, const ServeEngine& engine,
                   const std::vector<GenerationResult>& results) {
  std::printf("\n-- %s --\n", label);
  std::printf("%4s %7s %7s %9s %9s  %s\n", "id", "prompt", "tokens",
              "ttft_ms", "total_ms", "finish");
  for (const auto& r : results) {
    std::printf("%4llu %7zu %7zu %9.2f %9.2f  %s\n",
                static_cast<unsigned long long>(r.id), r.prompt_tokens,
                r.tokens.size(), r.ttft_ms, r.total_ms, to_string(r.finish));
  }
  const ServeStats& s = engine.stats();
  std::printf("  %zu requests, %llu tokens in %zu engine steps "
              "(peak batch %zu), %.0f tokens/sec\n",
              s.completed, static_cast<unsigned long long>(s.generated_tokens),
              s.engine_steps, s.peak_active, s.tokens_per_sec());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const std::size_t threads = configure_threads(args);
    const obs::ObsOptions obs_options = obs::configure_observability(args);
    const std::size_t n_requests =
        static_cast<std::size_t>(args.get_long("requests", 12));
    ServeConfig cfg;
    cfg.max_batch = static_cast<std::size_t>(args.get_long("batch", 4));
    cfg.max_context = 96;

    std::printf("== Continuous-batching serving over llama7b-sim "
                "(%zu requests, batch %zu, %zu threads) ==\n",
                n_requests, cfg.max_batch, threads);
    auto corpora = make_standard_corpora();
    ModelZoo zoo;
    const Model dense = zoo.get(llama7b_sim(), *corpora);
    QuantSpec spec;
    spec.bits = 4;
    spec.group_size = 16;
    const PackedModel packed = PackedModel::pack_uniform(dense, spec);
    const std::vector<Request> traffic =
        make_traffic(corpora->wiki, n_requests, dense.config.vocab_size);

    obs::RunReport report;
    report.add_config("example", std::string("serve_demo"));
    report.add_config("requests", static_cast<long>(n_requests));
    report.add_config("max_batch", static_cast<long>(cfg.max_batch));
    report.add_config("threads", static_cast<long>(threads));

    ServeEngine dense_engine(make_backend(dense), cfg);
    serve_wave(dense_engine, traffic);
    print_results("dense", dense_engine, dense_engine.run());
    dense_engine.fill_report(report);

    ServeEngine packed_engine(make_backend(packed), cfg);
    serve_wave(packed_engine, traffic);
    print_results("packed w4g16", packed_engine, packed_engine.run());
    packed_engine.fill_report(report);

    std::printf("\nKV pool: %zu slots x %zu positions = %.2f MiB resident\n",
                packed_engine.pool().slots(),
                packed_engine.pool().max_context(),
                static_cast<double>(packed_engine.pool().bytes()) /
                    (1024.0 * 1024.0));
    obs::finalize_observability(obs_options, report);
  } catch (const Error& e) {
    std::fprintf(stderr, "serve_demo: %s\n", e.what());
    return 1;
  }
  return 0;
}
