# Empty dependencies file for qformat_test.
# This may be replaced when dependencies are built.
