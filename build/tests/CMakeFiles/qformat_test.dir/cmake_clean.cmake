file(REMOVE_RECURSE
  "CMakeFiles/qformat_test.dir/qformat_test.cpp.o"
  "CMakeFiles/qformat_test.dir/qformat_test.cpp.o.d"
  "qformat_test"
  "qformat_test.pdb"
  "qformat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qformat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
