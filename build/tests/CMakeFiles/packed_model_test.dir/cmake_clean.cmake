file(REMOVE_RECURSE
  "CMakeFiles/packed_model_test.dir/packed_model_test.cpp.o"
  "CMakeFiles/packed_model_test.dir/packed_model_test.cpp.o.d"
  "packed_model_test"
  "packed_model_test.pdb"
  "packed_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
