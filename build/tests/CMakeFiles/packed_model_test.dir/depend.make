# Empty dependencies file for packed_model_test.
# This may be replaced when dependencies are built.
