file(REMOVE_RECURSE
  "CMakeFiles/obq_reference_test.dir/obq_reference_test.cpp.o"
  "CMakeFiles/obq_reference_test.dir/obq_reference_test.cpp.o.d"
  "obq_reference_test"
  "obq_reference_test.pdb"
  "obq_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obq_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
