# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for obq_reference_test.
