# Empty compiler generated dependencies file for obq_reference_test.
# This may be replaced when dependencies are built.
