file(REMOVE_RECURSE
  "CMakeFiles/hessian_test.dir/hessian_test.cpp.o"
  "CMakeFiles/hessian_test.dir/hessian_test.cpp.o.d"
  "hessian_test"
  "hessian_test.pdb"
  "hessian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hessian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
