# Empty compiler generated dependencies file for hessian_test.
# This may be replaced when dependencies are built.
