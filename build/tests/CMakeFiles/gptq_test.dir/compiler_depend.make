# Empty compiler generated dependencies file for gptq_test.
# This may be replaced when dependencies are built.
