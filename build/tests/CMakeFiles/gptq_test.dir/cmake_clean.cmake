file(REMOVE_RECURSE
  "CMakeFiles/gptq_test.dir/gptq_test.cpp.o"
  "CMakeFiles/gptq_test.dir/gptq_test.cpp.o.d"
  "gptq_test"
  "gptq_test.pdb"
  "gptq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
