
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aptq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/aptq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/aptq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/aptq_train.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/aptq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aptq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aptq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
