# Empty dependencies file for mixed_precision_test.
# This may be replaced when dependencies are built.
