# Empty compiler generated dependencies file for aptq_calib_test.
# This may be replaced when dependencies are built.
