file(REMOVE_RECURSE
  "CMakeFiles/aptq_calib_test.dir/aptq_calib_test.cpp.o"
  "CMakeFiles/aptq_calib_test.dir/aptq_calib_test.cpp.o.d"
  "aptq_calib_test"
  "aptq_calib_test.pdb"
  "aptq_calib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_calib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
