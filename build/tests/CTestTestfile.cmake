# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_test[1]_include.cmake")
include("/root/repo/build/tests/qformat_test[1]_include.cmake")
include("/root/repo/build/tests/hessian_test[1]_include.cmake")
include("/root/repo/build/tests/gptq_test[1]_include.cmake")
include("/root/repo/build/tests/aptq_calib_test[1]_include.cmake")
include("/root/repo/build/tests/mixed_precision_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_test[1]_include.cmake")
include("/root/repo/build/tests/packed_model_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/args_test[1]_include.cmake")
include("/root/repo/build/tests/obq_reference_test[1]_include.cmake")
include("/root/repo/build/tests/gqa_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
