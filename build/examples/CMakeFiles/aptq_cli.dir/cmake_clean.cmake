file(REMOVE_RECURSE
  "CMakeFiles/aptq_cli.dir/aptq_cli.cpp.o"
  "CMakeFiles/aptq_cli.dir/aptq_cli.cpp.o.d"
  "aptq_cli"
  "aptq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
