# Empty dependencies file for aptq_cli.
# This may be replaced when dependencies are built.
