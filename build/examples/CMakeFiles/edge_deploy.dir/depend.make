# Empty dependencies file for edge_deploy.
# This may be replaced when dependencies are built.
