# Empty compiler generated dependencies file for aptq_eval.
# This may be replaced when dependencies are built.
