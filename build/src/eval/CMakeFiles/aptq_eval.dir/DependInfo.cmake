
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/harness.cpp" "src/eval/CMakeFiles/aptq_eval.dir/harness.cpp.o" "gcc" "src/eval/CMakeFiles/aptq_eval.dir/harness.cpp.o.d"
  "/root/repo/src/eval/perplexity.cpp" "src/eval/CMakeFiles/aptq_eval.dir/perplexity.cpp.o" "gcc" "src/eval/CMakeFiles/aptq_eval.dir/perplexity.cpp.o.d"
  "/root/repo/src/eval/tasks.cpp" "src/eval/CMakeFiles/aptq_eval.dir/tasks.cpp.o" "gcc" "src/eval/CMakeFiles/aptq_eval.dir/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/aptq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/aptq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/aptq_train.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aptq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aptq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
