file(REMOVE_RECURSE
  "CMakeFiles/aptq_eval.dir/harness.cpp.o"
  "CMakeFiles/aptq_eval.dir/harness.cpp.o.d"
  "CMakeFiles/aptq_eval.dir/perplexity.cpp.o"
  "CMakeFiles/aptq_eval.dir/perplexity.cpp.o.d"
  "CMakeFiles/aptq_eval.dir/tasks.cpp.o"
  "CMakeFiles/aptq_eval.dir/tasks.cpp.o.d"
  "libaptq_eval.a"
  "libaptq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
