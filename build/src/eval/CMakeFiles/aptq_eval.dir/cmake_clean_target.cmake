file(REMOVE_RECURSE
  "libaptq_eval.a"
)
