# Empty dependencies file for aptq_model.
# This may be replaced when dependencies are built.
