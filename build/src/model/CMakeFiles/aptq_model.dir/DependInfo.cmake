
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/backward.cpp" "src/model/CMakeFiles/aptq_model.dir/backward.cpp.o" "gcc" "src/model/CMakeFiles/aptq_model.dir/backward.cpp.o.d"
  "/root/repo/src/model/decoder.cpp" "src/model/CMakeFiles/aptq_model.dir/decoder.cpp.o" "gcc" "src/model/CMakeFiles/aptq_model.dir/decoder.cpp.o.d"
  "/root/repo/src/model/forward.cpp" "src/model/CMakeFiles/aptq_model.dir/forward.cpp.o" "gcc" "src/model/CMakeFiles/aptq_model.dir/forward.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/aptq_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/aptq_model.dir/model.cpp.o.d"
  "/root/repo/src/model/sampler.cpp" "src/model/CMakeFiles/aptq_model.dir/sampler.cpp.o" "gcc" "src/model/CMakeFiles/aptq_model.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/aptq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aptq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
