file(REMOVE_RECURSE
  "libaptq_model.a"
)
