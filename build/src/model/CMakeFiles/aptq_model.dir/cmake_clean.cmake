file(REMOVE_RECURSE
  "CMakeFiles/aptq_model.dir/backward.cpp.o"
  "CMakeFiles/aptq_model.dir/backward.cpp.o.d"
  "CMakeFiles/aptq_model.dir/decoder.cpp.o"
  "CMakeFiles/aptq_model.dir/decoder.cpp.o.d"
  "CMakeFiles/aptq_model.dir/forward.cpp.o"
  "CMakeFiles/aptq_model.dir/forward.cpp.o.d"
  "CMakeFiles/aptq_model.dir/model.cpp.o"
  "CMakeFiles/aptq_model.dir/model.cpp.o.d"
  "CMakeFiles/aptq_model.dir/sampler.cpp.o"
  "CMakeFiles/aptq_model.dir/sampler.cpp.o.d"
  "libaptq_model.a"
  "libaptq_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
