file(REMOVE_RECURSE
  "CMakeFiles/aptq_tensor.dir/cholesky.cpp.o"
  "CMakeFiles/aptq_tensor.dir/cholesky.cpp.o.d"
  "CMakeFiles/aptq_tensor.dir/matrix.cpp.o"
  "CMakeFiles/aptq_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/aptq_tensor.dir/ops.cpp.o"
  "CMakeFiles/aptq_tensor.dir/ops.cpp.o.d"
  "libaptq_tensor.a"
  "libaptq_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
