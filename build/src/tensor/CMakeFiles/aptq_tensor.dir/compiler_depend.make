# Empty compiler generated dependencies file for aptq_tensor.
# This may be replaced when dependencies are built.
