file(REMOVE_RECURSE
  "libaptq_tensor.a"
)
