file(REMOVE_RECURSE
  "CMakeFiles/aptq_train.dir/adamw.cpp.o"
  "CMakeFiles/aptq_train.dir/adamw.cpp.o.d"
  "CMakeFiles/aptq_train.dir/loss.cpp.o"
  "CMakeFiles/aptq_train.dir/loss.cpp.o.d"
  "CMakeFiles/aptq_train.dir/trainer.cpp.o"
  "CMakeFiles/aptq_train.dir/trainer.cpp.o.d"
  "libaptq_train.a"
  "libaptq_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
