file(REMOVE_RECURSE
  "libaptq_train.a"
)
