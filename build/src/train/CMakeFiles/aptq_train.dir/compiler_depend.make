# Empty compiler generated dependencies file for aptq_train.
# This may be replaced when dependencies are built.
