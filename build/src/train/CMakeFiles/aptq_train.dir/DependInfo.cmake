
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/adamw.cpp" "src/train/CMakeFiles/aptq_train.dir/adamw.cpp.o" "gcc" "src/train/CMakeFiles/aptq_train.dir/adamw.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/train/CMakeFiles/aptq_train.dir/loss.cpp.o" "gcc" "src/train/CMakeFiles/aptq_train.dir/loss.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/aptq_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/aptq_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/aptq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aptq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aptq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
