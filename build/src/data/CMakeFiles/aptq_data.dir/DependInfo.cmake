
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus.cpp" "src/data/CMakeFiles/aptq_data.dir/corpus.cpp.o" "gcc" "src/data/CMakeFiles/aptq_data.dir/corpus.cpp.o.d"
  "/root/repo/src/data/markov.cpp" "src/data/CMakeFiles/aptq_data.dir/markov.cpp.o" "gcc" "src/data/CMakeFiles/aptq_data.dir/markov.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aptq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
