file(REMOVE_RECURSE
  "libaptq_data.a"
)
