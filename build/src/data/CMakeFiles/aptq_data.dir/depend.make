# Empty dependencies file for aptq_data.
# This may be replaced when dependencies are built.
