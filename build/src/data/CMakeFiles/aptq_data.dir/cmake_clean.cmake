file(REMOVE_RECURSE
  "CMakeFiles/aptq_data.dir/corpus.cpp.o"
  "CMakeFiles/aptq_data.dir/corpus.cpp.o.d"
  "CMakeFiles/aptq_data.dir/markov.cpp.o"
  "CMakeFiles/aptq_data.dir/markov.cpp.o.d"
  "libaptq_data.a"
  "libaptq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
