# Empty compiler generated dependencies file for aptq_util.
# This may be replaced when dependencies are built.
