file(REMOVE_RECURSE
  "libaptq_util.a"
)
