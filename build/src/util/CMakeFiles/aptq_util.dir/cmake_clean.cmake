file(REMOVE_RECURSE
  "CMakeFiles/aptq_util.dir/args.cpp.o"
  "CMakeFiles/aptq_util.dir/args.cpp.o.d"
  "CMakeFiles/aptq_util.dir/check.cpp.o"
  "CMakeFiles/aptq_util.dir/check.cpp.o.d"
  "CMakeFiles/aptq_util.dir/io.cpp.o"
  "CMakeFiles/aptq_util.dir/io.cpp.o.d"
  "CMakeFiles/aptq_util.dir/rng.cpp.o"
  "CMakeFiles/aptq_util.dir/rng.cpp.o.d"
  "CMakeFiles/aptq_util.dir/table.cpp.o"
  "CMakeFiles/aptq_util.dir/table.cpp.o.d"
  "libaptq_util.a"
  "libaptq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
