file(REMOVE_RECURSE
  "CMakeFiles/aptq_core.dir/model_zoo.cpp.o"
  "CMakeFiles/aptq_core.dir/model_zoo.cpp.o.d"
  "CMakeFiles/aptq_core.dir/pipeline.cpp.o"
  "CMakeFiles/aptq_core.dir/pipeline.cpp.o.d"
  "libaptq_core.a"
  "libaptq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
