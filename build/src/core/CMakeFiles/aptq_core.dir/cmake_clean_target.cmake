file(REMOVE_RECURSE
  "libaptq_core.a"
)
