# Empty compiler generated dependencies file for aptq_core.
# This may be replaced when dependencies are built.
