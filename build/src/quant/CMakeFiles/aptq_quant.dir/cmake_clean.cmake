file(REMOVE_RECURSE
  "CMakeFiles/aptq_quant.dir/aptq.cpp.o"
  "CMakeFiles/aptq_quant.dir/aptq.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/baselines.cpp.o"
  "CMakeFiles/aptq_quant.dir/baselines.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/diagnostics.cpp.o"
  "CMakeFiles/aptq_quant.dir/diagnostics.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/gptq.cpp.o"
  "CMakeFiles/aptq_quant.dir/gptq.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/hessian.cpp.o"
  "CMakeFiles/aptq_quant.dir/hessian.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/mixed_precision.cpp.o"
  "CMakeFiles/aptq_quant.dir/mixed_precision.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/packed_model.cpp.o"
  "CMakeFiles/aptq_quant.dir/packed_model.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/qformat.cpp.o"
  "CMakeFiles/aptq_quant.dir/qformat.cpp.o.d"
  "CMakeFiles/aptq_quant.dir/qmodel.cpp.o"
  "CMakeFiles/aptq_quant.dir/qmodel.cpp.o.d"
  "libaptq_quant.a"
  "libaptq_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aptq_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
