file(REMOVE_RECURSE
  "libaptq_quant.a"
)
