# Empty compiler generated dependencies file for aptq_quant.
# This may be replaced when dependencies are built.
