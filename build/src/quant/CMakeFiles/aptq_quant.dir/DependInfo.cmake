
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/aptq.cpp" "src/quant/CMakeFiles/aptq_quant.dir/aptq.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/aptq.cpp.o.d"
  "/root/repo/src/quant/baselines.cpp" "src/quant/CMakeFiles/aptq_quant.dir/baselines.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/baselines.cpp.o.d"
  "/root/repo/src/quant/diagnostics.cpp" "src/quant/CMakeFiles/aptq_quant.dir/diagnostics.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/diagnostics.cpp.o.d"
  "/root/repo/src/quant/gptq.cpp" "src/quant/CMakeFiles/aptq_quant.dir/gptq.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/gptq.cpp.o.d"
  "/root/repo/src/quant/hessian.cpp" "src/quant/CMakeFiles/aptq_quant.dir/hessian.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/hessian.cpp.o.d"
  "/root/repo/src/quant/mixed_precision.cpp" "src/quant/CMakeFiles/aptq_quant.dir/mixed_precision.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/mixed_precision.cpp.o.d"
  "/root/repo/src/quant/packed_model.cpp" "src/quant/CMakeFiles/aptq_quant.dir/packed_model.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/packed_model.cpp.o.d"
  "/root/repo/src/quant/qformat.cpp" "src/quant/CMakeFiles/aptq_quant.dir/qformat.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/qformat.cpp.o.d"
  "/root/repo/src/quant/qmodel.cpp" "src/quant/CMakeFiles/aptq_quant.dir/qmodel.cpp.o" "gcc" "src/quant/CMakeFiles/aptq_quant.dir/qmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/aptq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/aptq_train.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/aptq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/aptq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aptq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
