# Empty dependencies file for table1_perplexity.
# This may be replaced when dependencies are built.
