file(REMOVE_RECURSE
  "CMakeFiles/table1_perplexity.dir/table1_perplexity.cpp.o"
  "CMakeFiles/table1_perplexity.dir/table1_perplexity.cpp.o.d"
  "table1_perplexity"
  "table1_perplexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
