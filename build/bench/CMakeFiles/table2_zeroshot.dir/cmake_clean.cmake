file(REMOVE_RECURSE
  "CMakeFiles/table2_zeroshot.dir/table2_zeroshot.cpp.o"
  "CMakeFiles/table2_zeroshot.dir/table2_zeroshot.cpp.o.d"
  "table2_zeroshot"
  "table2_zeroshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_zeroshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
