# Empty dependencies file for table2_zeroshot.
# This may be replaced when dependencies are built.
